//===----------------------------------------------------------------------===//
///
/// \file
/// Parallel-compile equivalence suite: randomized nested `case` programs
/// compiled serially and on the persistent worker-pool engine must produce
/// reference-equal canonical FDDs — in the same manager directly, and
/// across managers after an export/import round trip. Also covers the
/// verifier-owned pool's persistence and nesting through while loops.
/// Runs under ThreadSanitizer in `./ci.sh tsan`.
///
//===----------------------------------------------------------------------===//

#include "analysis/Verifier.h"
#include "ast/Context.h"
#include "fdd/Compile.h"
#include "fdd/CompileCache.h"
#include "fdd/Export.h"
#include "markov/Absorbing.h"
#include "support/ThreadPool.h"

#include <gtest/gtest.h>

#include <atomic>
#include <memory>
#include <random>

using namespace mcnk;
using namespace mcnk::fdd;
using ast::Context;
using ast::Node;

namespace {

/// Generates random guarded programs that are heavy on (nested) `case`
/// constructs, the shape the parallel backend actually compiles.
struct CaseFixture {
  Context Ctx;
  FieldId A = Ctx.field("a");
  FieldId B = Ctx.field("b");
  std::mt19937_64 Rng;

  explicit CaseFixture(unsigned Seed) : Rng(Seed) {}

  FieldValue value() {
    return std::uniform_int_distribution<FieldValue>(0, 2)(Rng);
  }
  FieldId field() {
    return std::uniform_int_distribution<int>(0, 1)(Rng) ? A : B;
  }

  const Node *randomPredicate(unsigned Depth) {
    std::uniform_int_distribution<int> Pick(0, Depth == 0 ? 0 : 2);
    switch (Pick(Rng)) {
    case 0:
      return Ctx.test(field(), value());
    case 1:
      return Ctx.negate(randomPredicate(Depth - 1));
    default:
      return Ctx.unite(randomPredicate(Depth - 1),
                       randomPredicate(Depth - 1));
    }
  }

  const Node *randomProgram(unsigned Depth) {
    std::uniform_int_distribution<int> Pick(0, Depth == 0 ? 3 : 7);
    switch (Pick(Rng)) {
    case 0:
      return Ctx.assign(field(), value());
    case 1:
      return Ctx.test(field(), value());
    case 2:
      return Ctx.skip();
    case 3:
      return Ctx.drop();
    case 4:
      return Ctx.seq(randomProgram(Depth - 1), randomProgram(Depth - 1));
    case 5:
      return Ctx.choice(
          Rational(std::uniform_int_distribution<int>(1, 3)(Rng), 4),
          randomProgram(Depth - 1), randomProgram(Depth - 1));
    case 6:
      return Ctx.ite(randomPredicate(1), randomProgram(Depth - 1),
                     randomProgram(Depth - 1));
    default:
      return randomCase(Depth);
    }
  }

  /// A `case` with 2–4 arms whose guards are random predicates (arms may
  /// overlap — first match wins — and may themselves contain cases).
  const Node *randomCase(unsigned Depth) {
    std::size_t Arms = std::uniform_int_distribution<std::size_t>(2, 4)(Rng);
    std::vector<ast::CaseNode::Branch> Branches;
    for (std::size_t I = 0; I < Arms; ++I)
      Branches.emplace_back(randomPredicate(1),
                            randomProgram(Depth ? Depth - 1 : 0));
    return Ctx.caseOf(std::move(Branches),
                      randomProgram(Depth ? Depth - 1 : 0));
  }
};

} // namespace

class ParallelCompileProperty : public ::testing::TestWithParam<unsigned> {};

TEST_P(ParallelCompileProperty, MatchesSerialByReferenceEquality) {
  CaseFixture F(GetParam());
  FddManager M;
  for (int Round = 0; Round < 12; ++Round) {
    const Node *P = F.randomCase(3);
    FddRef Serial = compile(M, P);
    for (unsigned Threads : {1u, 2u, 4u}) {
      ThreadPool Pool(Threads);
      CompileOptions O;
      O.ParallelCase = true;
      O.Pool = &Pool;
      EXPECT_EQ(compile(M, P, O), Serial)
          << "round " << Round << ", " << Threads << " threads";
    }
  }
}

TEST_P(ParallelCompileProperty, ReferenceEqualAfterImport) {
  CaseFixture F(GetParam());
  ThreadPool Pool(3);
  for (int Round = 0; Round < 8; ++Round) {
    const Node *P = F.randomCase(3);
    // Serial and parallel compiles in *separate* managers...
    FddManager SerialM, ParallelM, Target;
    FddRef Serial = compile(SerialM, P);
    CompileOptions O;
    O.ParallelCase = true;
    O.Pool = &Pool;
    FddRef Parallel = compile(ParallelM, P, O);
    // ...become reference-equal once imported into a common manager.
    EXPECT_EQ(importFdd(Target, exportFdd(SerialM, Serial)),
              importFdd(Target, exportFdd(ParallelM, Parallel)))
        << "round " << Round;
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, ParallelCompileProperty,
                         ::testing::Values(101u, 102u, 103u, 104u, 105u));

TEST(ParallelCompileTest, NestedCaseThroughWhileLoops) {
  // A case whose arms contain while loops which in turn contain cases:
  // the shape that used to force serialization (and could deadlock on a
  // per-case pool). All nesting levels now share one engine.
  Context Ctx;
  FieldId Pos = Ctx.field("pos");
  FieldId Sw = Ctx.field("sw");

  auto InnerCase = [&](FieldValue Bias) {
    std::vector<ast::CaseNode::Branch> Branches;
    Branches.emplace_back(Ctx.test(Pos, 1),
                          Ctx.choice(Rational(1, 2), Ctx.assign(Pos, 2),
                                     Ctx.assign(Pos, 0)));
    Branches.emplace_back(Ctx.test(Pos, 2), Ctx.assign(Pos, Bias));
    return Ctx.caseOf(std::move(Branches), Ctx.skip());
  };
  // while (pos=1 | pos=2) do <inner case>.
  auto Loop = [&](FieldValue Bias) {
    return Ctx.whileLoop(Ctx.unite(Ctx.test(Pos, 1), Ctx.test(Pos, 2)),
                         InnerCase(Bias));
  };
  std::vector<ast::CaseNode::Branch> Outer;
  Outer.emplace_back(Ctx.test(Sw, 0), Loop(0));
  Outer.emplace_back(Ctx.test(Sw, 1), Loop(3));
  Outer.emplace_back(Ctx.test(Sw, 2), Ctx.seq(Loop(0), Loop(3)));
  const Node *P = Ctx.caseOf(std::move(Outer), Ctx.drop());

  FddManager M;
  FddRef Serial = compile(M, P);
  for (unsigned Threads : {1u, 2u}) {
    ThreadPool Pool(Threads);
    CompileOptions O;
    O.ParallelCase = true;
    O.Pool = &Pool;
    EXPECT_EQ(compile(M, P, O), Serial);
  }
}

TEST(ParallelCompileTest, GlobalPoolServesPoolLessCallers) {
  // ParallelCase with no explicit engine: the process-global pool steps
  // in; repeated compiles reuse it rather than spawning per-case pools.
  CaseFixture F(201u);
  FddManager M;
  for (int Round = 0; Round < 4; ++Round) {
    const Node *P = F.randomCase(2);
    CompileOptions O;
    O.ParallelCase = true;
    EXPECT_EQ(compile(M, P, O), compile(M, P));
  }
}

TEST(ParallelCompileTest, ConcurrentBlockedSolvesOnOneEngine) {
  // Many block-structured exact solves race on one engine: each solve
  // schedules its condensation-DAG block tasks on the pool while sibling
  // solves (themselves running as pool tasks via parallelFor) do the
  // same. This pins down the DAG scheduler's happens-before edges —
  // dependency counters under the mutex, absorption rows published
  // through the scheduling edge — under ThreadSanitizer (./ci.sh tsan).
  ThreadPool Pool(4);
  constexpr std::size_t NumSolves = 12;
  std::vector<char> Agree(NumSolves, 0);
  Pool.parallelFor(NumSolves, [&](std::size_t I) {
    std::mt19937_64 Rng(0xB10C5ULL + I);
    markov::AbsorbingChain Chain;
    Chain.NumTransient = 6 + I % 20;
    Chain.NumAbsorbing = 2;
    for (std::size_t Row = 0; Row < Chain.NumTransient; ++Row) {
      // Out-degree 1–3 over transient states (cycles included) plus an
      // absorbing escape on some rows; weights keep each row
      // substochastic so pruning leaves a nonsingular system.
      std::size_t Deg = 1 + Rng() % 3;
      for (std::size_t E = 0; E < Deg; ++E)
        Chain.QEntries.push_back(
            {Row, Rng() % Chain.NumTransient,
             Rational(1, static_cast<int64_t>(2 * Deg))});
      if (Row % 3 == 0 || Row + 1 == Chain.NumTransient)
        Chain.REntries.push_back(
            {Row, Rng() % Chain.NumAbsorbing, Rational(1, 4)});
    }
    linalg::DenseMatrix<Rational> Mono, Blocked;
    bool OkMono = markov::solveAbsorptionExact(Chain, Mono);
    markov::SolverStructure S;
    S.Blocked = true;
    S.Pool = &Pool;
    bool OkBlocked = markov::solveAbsorptionExact(Chain, Blocked, S);
    bool Same = OkMono == OkBlocked;
    if (Same && OkMono)
      for (std::size_t R = 0; R < Chain.NumTransient; ++R)
        for (std::size_t C = 0; C < Chain.NumAbsorbing; ++C)
          Same = Same && Mono.at(R, C) == Blocked.at(R, C);
    Agree[I] = Same ? 1 : 0;
  });
  for (std::size_t I = 0; I < NumSolves; ++I)
    EXPECT_TRUE(Agree[I]) << "solve " << I;
}

TEST(ParallelCompileTest, BlockedLoopsNestInsideParallelCase) {
  // Parallel `case` arms containing while loops, compiled on the same
  // engine the blocked solver schedules its block tasks on: worker
  // managers inherit the blocked structure, so block tasks are enqueued
  // from threads that are themselves pool tasks (help-first waiting keeps
  // the composition deadlock-free). Runs under TSan via ./ci.sh tsan.
  Context Ctx;
  FieldId Pos = Ctx.field("pos");
  FieldId Sw = Ctx.field("sw");
  // while (pos=1 | pos=2) { if pos=1 then coin(pos:=2 / pos:=0)
  //                         else coin(pos:=1 / pos:=3) }
  // The two loop states reach each other, so the chain has a genuine
  // multi-state strongly connected class.
  auto Loop = [&](int Num, int Den) {
    return Ctx.whileLoop(
        Ctx.unite(Ctx.test(Pos, 1), Ctx.test(Pos, 2)),
        Ctx.ite(Ctx.test(Pos, 1),
                Ctx.choice(Rational(Num, Den), Ctx.assign(Pos, 2),
                           Ctx.assign(Pos, 0)),
                Ctx.choice(Rational(Num, Den), Ctx.assign(Pos, 1),
                           Ctx.assign(Pos, 3))));
  };
  std::vector<ast::CaseNode::Branch> Arms;
  Arms.emplace_back(Ctx.test(Sw, 0), Loop(1, 2));
  Arms.emplace_back(Ctx.test(Sw, 1), Loop(1, 3));
  Arms.emplace_back(Ctx.test(Sw, 2), Ctx.seq(Loop(1, 2), Loop(2, 3)));
  Arms.emplace_back(Ctx.test(Sw, 3), Loop(3, 4));
  const Node *P = Ctx.caseOf(std::move(Arms), Ctx.drop());

  FddManager Serial;
  FddRef Reference = compile(Serial, P);

  ThreadPool Pool(4);
  markov::SolverStructure S;
  S.Blocked = true;
  S.Ordering = linalg::OrderingKind::ReverseCuthillMcKee;
  S.Pool = &Pool;
  CompileOptions O;
  O.ParallelCase = true;
  O.Pool = &Pool;
  for (int Round = 0; Round < 3; ++Round) {
    FddManager M;
    M.setSolverStructure(S);
    FddRef Blocked = compile(M, P, O);
    EXPECT_EQ(importFdd(Serial, exportFdd(M, Blocked)), Reference)
        << "round " << Round;
  }
}

TEST(ParallelCompileTest, ConcurrentModularSolvesOnOneEngine) {
  // The S14 analogue of ConcurrentBlockedSolvesOnOneEngine: many modular
  // solves race on one engine, each fanning its per-prime batch out via
  // parallelFor while sibling solves (themselves pool tasks) do the same,
  // and the blocked+modular combination adds block tasks on top. The
  // lazily extended prime table is shared by every worker, so this pins
  // its locking and the per-prime result slots under ThreadSanitizer
  // (./ci.sh tsan).
  ThreadPool Pool(4);
  constexpr std::size_t NumSolves = 12;
  std::vector<char> Agree(NumSolves, 0);
  Pool.parallelFor(NumSolves, [&](std::size_t I) {
    std::mt19937_64 Rng(0x40DA7ULL + I);
    markov::AbsorbingChain Chain;
    Chain.NumTransient = 6 + I % 20;
    Chain.NumAbsorbing = 2;
    for (std::size_t Row = 0; Row < Chain.NumTransient; ++Row) {
      std::size_t Deg = 1 + Rng() % 3;
      for (std::size_t E = 0; E < Deg; ++E)
        Chain.QEntries.push_back(
            {Row, Rng() % Chain.NumTransient,
             Rational(1, static_cast<int64_t>(2 * Deg))});
      if (Row % 3 == 0 || Row + 1 == Chain.NumTransient)
        Chain.REntries.push_back(
            {Row, Rng() % Chain.NumAbsorbing, Rational(1, 4)});
    }
    linalg::DenseMatrix<Rational> Exact, Modular, ModularBlocked;
    bool OkExact = markov::solveAbsorptionExact(Chain, Exact);
    markov::SolverStructure S;
    S.Pool = &Pool;
    bool OkModular = markov::solveAbsorptionModular(Chain, Modular, S);
    S.Blocked = true;
    bool OkBlocked =
        markov::solveAbsorptionModular(Chain, ModularBlocked, S);
    bool Same = OkExact == OkModular && OkExact == OkBlocked;
    if (Same && OkExact)
      for (std::size_t R = 0; R < Chain.NumTransient; ++R)
        for (std::size_t C = 0; C < Chain.NumAbsorbing; ++C)
          Same = Same && Exact.at(R, C) == Modular.at(R, C) &&
                 Exact.at(R, C) == ModularBlocked.at(R, C);
    Agree[I] = Same ? 1 : 0;
  });
  for (std::size_t I = 0; I < NumSolves; ++I)
    EXPECT_TRUE(Agree[I]) << "solve " << I;
}

TEST(ParallelCompileTest, VerifierOwnsOnePersistentPool) {
  CaseFixture F(301u);
  analysis::Verifier V;
  ThreadPool &Pool = V.compilePool(2);
  EXPECT_EQ(Pool.numThreads(), 2u);
  // Same width → same engine across compiles.
  EXPECT_EQ(&V.compilePool(2), &Pool);
  EXPECT_EQ(&V.compilePool(0), &Pool);
  const Node *P = F.randomCase(2);
  FddRef First = V.compile(P, /*Parallel=*/true, /*Threads=*/2);
  FddRef Second = V.compile(P, /*Parallel=*/true, /*Threads=*/2);
  FddRef SerialRef = V.compile(P);
  EXPECT_EQ(First, Second);
  EXPECT_EQ(First, SerialRef);
  // An explicit different width replaces the engine.
  ThreadPool &Wider = V.compilePool(3);
  EXPECT_EQ(Wider.numThreads(), 3u);
}

//===----------------------------------------------------------------------===//
// CompileCache accounting under concurrent insert (the S12/S16 contract:
// the persistence observer and the size counters must both survive N pool
// workers racing to fill the same fingerprint).
//===----------------------------------------------------------------------===//

TEST(CompileCacheRaceTest, ConcurrentSameKeyInsertsKeepAccountingExact) {
  // Export a real diagram so StoredNodes has a nontrivial expected value.
  CaseFixture F(77u);
  analysis::Verifier V;
  PortableFdd Diagram = exportFdd(V.manager(), V.compile(F.randomCase(2)));
  const std::size_t DiagramNodes = Diagram.Nodes.size();
  ASSERT_GT(DiagramNodes, 0u);

  constexpr std::size_t NumInserts = 64;
  CompileCache Cache(/*Capacity=*/8);
  std::atomic<uint64_t> Observed{0};
  Cache.setInsertObserver(
      [&Observed](const ast::ProgramHash &, markov::SolverKind,
                  const std::shared_ptr<const PortableFdd> &) {
        ++Observed;
      });

  // N workers hammer ONE key: every thread misses, compiles "its own"
  // copy, and races to insert. Before each insert, a lookup — so the
  // hit/miss counters see contention too.
  ast::ProgramHash Key{0xfeedULL, 0xfaceULL};
  ThreadPool Pool(8);
  Pool.parallelFor(NumInserts, [&](std::size_t) {
    std::shared_ptr<const PortableFdd> Out;
    Cache.lookup(Key, markov::SolverKind::Exact, Out);
    Cache.insert(Key, markov::SolverKind::Exact, PortableFdd(Diagram));
  });

  CompileCache::Stats S = Cache.stats();
  // Exactly one entry came into being, no matter how many raced...
  EXPECT_EQ(S.Entries, 1u);
  EXPECT_EQ(S.Insertions, 1u);
  EXPECT_EQ(S.Evictions, 0u);
  // ...every other insert was deduplicated, not double-counted...
  EXPECT_EQ(S.DuplicateInserts, NumInserts - 1);
  EXPECT_EQ(S.Insertions + S.DuplicateInserts, NumInserts);
  // ...the size accounting reflects the one resident diagram, not the
  // sum of every racing copy...
  EXPECT_EQ(S.StoredNodes, DiagramNodes);
  // ...the lookups all balanced...
  EXPECT_EQ(S.Hits + S.Misses, NumInserts);
  // ...and the persistence hook fired exactly once (this is what keeps
  // the on-disk store free of duplicate records under racing workers).
  EXPECT_EQ(Observed.load(), 1u);

  // The stored value is intact and shared.
  std::shared_ptr<const PortableFdd> Hit;
  ASSERT_TRUE(Cache.lookup(Key, markov::SolverKind::Exact, Hit));
  EXPECT_EQ(Hit->Nodes.size(), DiagramNodes);
}

TEST(CompileCacheRaceTest, EvictionAccountingStaysConsistentUnderChurn) {
  CaseFixture F(78u);
  analysis::Verifier V;
  PortableFdd Diagram = exportFdd(V.manager(), V.compile(F.randomCase(1)));
  const std::size_t DiagramNodes = Diagram.Nodes.size();

  // Far more distinct keys than capacity, inserted concurrently with
  // interleaved lookups: eviction runs constantly, and the invariants
  // must hold at every quiescent point.
  constexpr std::size_t NumKeys = 96;
  CompileCache Cache(/*Capacity=*/4);
  ThreadPool Pool(8);
  Pool.parallelFor(NumKeys, [&](std::size_t I) {
    ast::ProgramHash Key{static_cast<uint64_t>(I), 0xabcdULL};
    Cache.insert(Key, markov::SolverKind::Exact, PortableFdd(Diagram));
    std::shared_ptr<const PortableFdd> Out;
    Cache.lookup(Key, markov::SolverKind::Exact, Out);
  });

  CompileCache::Stats S = Cache.stats();
  EXPECT_EQ(S.Entries, 4u); // Full to capacity.
  EXPECT_EQ(S.Insertions, NumKeys);
  EXPECT_EQ(S.DuplicateInserts, 0u);
  // The load-bearing eviction invariant: every insertion either is
  // resident or was evicted, and StoredNodes tracks exactly the
  // residents (all diagrams here are the same size).
  EXPECT_EQ(S.Insertions - S.Evictions, S.Entries);
  EXPECT_EQ(S.StoredNodes, S.Entries * DiagramNodes);
}
