//===----------------------------------------------------------------------===//
///
/// \file
/// Absorbing Markov chain tests: textbook chains with known closed forms
/// (gambler's ruin, §4's coin-flip example), cross-engine agreement between
/// exact, direct, and iterative solvers, and singularity detection for
/// chains with unreachable absorption.
///
//===----------------------------------------------------------------------===//

#include "markov/Absorbing.h"

#include "markov/Scc.h"
#include "support/ModArith.h"
#include "support/ThreadPool.h"

#include <gtest/gtest.h>

#include <random>

using namespace mcnk;
using namespace mcnk::markov;
using linalg::DenseMatrix;

namespace {

/// Gambler's ruin on {0..N} with win probability P: transient 1..N-1,
/// absorbing 0 and N. Absorption probability into N starting from K is
/// ((q/p)^K - 1)/((q/p)^N - 1) for p != q.
AbsorbingChain gamblersRuin(std::size_t N, const Rational &P) {
  AbsorbingChain Chain;
  Chain.NumTransient = N - 1;
  Chain.NumAbsorbing = 2; // 0 = ruin, 1 = win.
  Rational Q = Rational(1) - P;
  for (std::size_t K = 1; K < N; ++K) {
    std::size_t Row = K - 1;
    if (K + 1 < N)
      Chain.QEntries.push_back({Row, Row + 1, P});
    else
      Chain.REntries.push_back({Row, 1, P});
    if (K - 1 >= 1)
      Chain.QEntries.push_back({Row, Row - 1, Q});
    else
      Chain.REntries.push_back({Row, 0, Q});
  }
  return Chain;
}

} // namespace

TEST(AbsorbingTest, CoinFlipLoopFromPaper) {
  // The §4 example: p* with p = (f<-0 ⊕_1/2 f<-1) keeps flipping; from the
  // small-step chain's perspective a single state loops with prob 1/2 and
  // absorbs into each of two outcomes with prob 1/4... Simplified model:
  // one transient state, self-loop 1/2, absorption 1/4 + 1/4.
  AbsorbingChain Chain;
  Chain.NumTransient = 1;
  Chain.NumAbsorbing = 2;
  Chain.QEntries.push_back({0, 0, Rational(1, 2)});
  Chain.REntries.push_back({0, 0, Rational(1, 4)});
  Chain.REntries.push_back({0, 1, Rational(1, 4)});
  ASSERT_TRUE(rowsAreStochastic(Chain));

  DenseMatrix<Rational> A;
  ASSERT_TRUE(solveAbsorptionExact(Chain, A));
  EXPECT_EQ(A.at(0, 0), Rational(1, 2));
  EXPECT_EQ(A.at(0, 1), Rational(1, 2));
}

TEST(AbsorbingTest, GamblersRuinExactMatchesClosedForm) {
  // N=5, p=2/3: ratio r = q/p = 1/2; Pr[win | start K] =
  // (1 - r^K)/(1 - r^N).
  AbsorbingChain Chain = gamblersRuin(5, Rational(2, 3));
  ASSERT_TRUE(rowsAreStochastic(Chain));
  DenseMatrix<Rational> A;
  ASSERT_TRUE(solveAbsorptionExact(Chain, A));
  Rational RatioPow(1);
  const Rational Ratio(1, 2);
  Rational Denom = Rational(1) - Rational(1, 32); // 1 - r^5
  for (std::size_t K = 1; K <= 4; ++K) {
    RatioPow *= Ratio;
    Rational Expected = (Rational(1) - RatioPow) / Denom;
    EXPECT_EQ(A.at(K - 1, 1), Expected) << "start " << K;
    // Rows of the absorption matrix are stochastic (total absorption = 1).
    EXPECT_EQ(A.at(K - 1, 0) + A.at(K - 1, 1), Rational(1));
  }
}

TEST(AbsorbingTest, EnginesAgree) {
  AbsorbingChain Chain = gamblersRuin(8, Rational(3, 5));
  DenseMatrix<Rational> Exact;
  ASSERT_TRUE(solveAbsorptionExact(Chain, Exact));

  DenseMatrix<double> Direct, Iterative;
  ASSERT_TRUE(solveAbsorptionDouble(Chain, Direct, SolverKind::Direct));
  ASSERT_TRUE(solveAbsorptionDouble(Chain, Iterative, SolverKind::Iterative));

  for (std::size_t R = 0; R < Chain.NumTransient; ++R)
    for (std::size_t C = 0; C < Chain.NumAbsorbing; ++C) {
      double Reference = Exact.at(R, C).toDouble();
      EXPECT_NEAR(Direct.at(R, C), Reference, 1e-10);
      EXPECT_NEAR(Iterative.at(R, C), Reference, 1e-9);
    }
}

TEST(AbsorbingTest, SubStochasticRowsLoseMass) {
  // A row that drops mass (models a drop action): absorption sums < 1.
  AbsorbingChain Chain;
  Chain.NumTransient = 1;
  Chain.NumAbsorbing = 1;
  Chain.QEntries.push_back({0, 0, Rational(1, 2)});
  Chain.REntries.push_back({0, 0, Rational(1, 4)});
  EXPECT_FALSE(rowsAreStochastic(Chain));
  DenseMatrix<Rational> A;
  ASSERT_TRUE(solveAbsorptionExact(Chain, A));
  // Σ (1/2)^n * 1/4 = 1/2.
  EXPECT_EQ(A.at(0, 0), Rational(1, 2));
}

TEST(AbsorbingTest, DivergingStatesDropAllMass) {
  // Two transient states that only communicate with each other: absorption
  // is unreachable, so the absorption probabilities are zero. ProbNetKAT
  // interprets the lost mass as landing on ∅ (the loop diverges ≡ drop).
  AbsorbingChain Chain;
  Chain.NumTransient = 2;
  Chain.NumAbsorbing = 1;
  Chain.QEntries.push_back({0, 1, Rational(1)});
  Chain.QEntries.push_back({1, 0, Rational(1)});
  DenseMatrix<Rational> A;
  ASSERT_TRUE(solveAbsorptionExact(Chain, A));
  EXPECT_EQ(A.at(0, 0), Rational(0));
  EXPECT_EQ(A.at(1, 0), Rational(0));
  DenseMatrix<double> AD;
  ASSERT_TRUE(solveAbsorptionDouble(Chain, AD, SolverKind::Direct));
  EXPECT_DOUBLE_EQ(AD.at(0, 0), 0.0);
  ASSERT_TRUE(solveAbsorptionDouble(Chain, AD, SolverKind::Iterative));
  EXPECT_DOUBLE_EQ(AD.at(1, 0), 0.0);
}

TEST(AbsorbingTest, PartiallyDivergingChain) {
  // State 0 flips a fair coin: heads -> absorb, tails -> state 1 which
  // loops forever. Absorption probability from state 0 is exactly 1/2.
  AbsorbingChain Chain;
  Chain.NumTransient = 2;
  Chain.NumAbsorbing = 1;
  Chain.QEntries.push_back({0, 1, Rational(1, 2)});
  Chain.QEntries.push_back({1, 1, Rational(1)});
  Chain.REntries.push_back({0, 0, Rational(1, 2)});
  DenseMatrix<Rational> A;
  ASSERT_TRUE(solveAbsorptionExact(Chain, A));
  EXPECT_EQ(A.at(0, 0), Rational(1, 2));
  EXPECT_EQ(A.at(1, 0), Rational(0));
  DenseMatrix<double> AD;
  ASSERT_TRUE(solveAbsorptionDouble(Chain, AD, SolverKind::Direct));
  EXPECT_NEAR(AD.at(0, 0), 0.5, 1e-12);
  EXPECT_NEAR(AD.at(1, 0), 0.0, 1e-12);
}

TEST(AbsorbingTest, EmptyChainTrivial) {
  AbsorbingChain Chain;
  Chain.NumTransient = 0;
  Chain.NumAbsorbing = 3;
  DenseMatrix<double> A;
  ASSERT_TRUE(solveAbsorptionDouble(Chain, A, SolverKind::Direct));
  EXPECT_EQ(A.numRows(), 0u);
  EXPECT_EQ(A.numCols(), 3u);
}

/// Randomized chains: the exact sparse Gauss-Jordan engine and the sparse
/// LU engine must agree entry-wise, and no row may exceed total mass one.
class AbsorbingEngineProperty : public ::testing::TestWithParam<unsigned> {};

TEST_P(AbsorbingEngineProperty, ExactAndDirectAgree) {
  std::mt19937_64 Rng(GetParam());
  for (int Round = 0; Round < 40; ++Round) {
    std::uniform_int_distribution<std::size_t> Size(2, 40);
    std::size_t NT = Size(Rng), NA = 2;
    AbsorbingChain Chain;
    Chain.NumTransient = NT;
    Chain.NumAbsorbing = NA;
    std::uniform_int_distribution<int> Den(2, 6);
    std::uniform_int_distribution<std::size_t> Col(0, NT - 1);
    for (std::size_t R = 0; R < NT; ++R) {
      int D = Den(Rng);
      for (int I = 0; I < D; ++I) {
        Rational W(1, D);
        if (I == 0 && (Rng() & 3) == 0)
          Chain.REntries.push_back(
              {R, static_cast<std::size_t>(Rng() % NA), W});
        else if ((Rng() & 7) == 0)
          continue; // Dropped mass: substochastic row.
        else
          Chain.QEntries.push_back({R, Col(Rng), W});
      }
    }
    DenseMatrix<Rational> Exact;
    DenseMatrix<double> Direct;
    ASSERT_TRUE(solveAbsorptionExact(Chain, Exact));
    ASSERT_TRUE(solveAbsorptionDouble(Chain, Direct, SolverKind::Direct));
    for (std::size_t R = 0; R < NT; ++R) {
      Rational RowSum;
      for (std::size_t A = 0; A < NA; ++A) {
        EXPECT_NEAR(Exact.at(R, A).toDouble(), Direct.at(R, A), 1e-8);
        RowSum += Exact.at(R, A);
      }
      EXPECT_LE(RowSum, Rational(1));
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, AbsorbingEngineProperty,
                         ::testing::Values(61u, 62u, 63u, 64u));

namespace {

/// A random chain in the shape the engine property suite uses: rows split
/// mass 1/D over random transient columns, absorbing exits, and a dash of
/// dropped mass so some rows are substochastic.
AbsorbingChain randomChain(std::mt19937_64 &Rng) {
  std::uniform_int_distribution<std::size_t> Size(2, 40);
  std::size_t NT = Size(Rng), NA = 2;
  AbsorbingChain Chain;
  Chain.NumTransient = NT;
  Chain.NumAbsorbing = NA;
  std::uniform_int_distribution<int> Den(2, 6);
  std::uniform_int_distribution<std::size_t> Col(0, NT - 1);
  for (std::size_t R = 0; R < NT; ++R) {
    int D = Den(Rng);
    for (int I = 0; I < D; ++I) {
      Rational W(1, D);
      if (I == 0 && (Rng() & 3) == 0)
        Chain.REntries.push_back({R, static_cast<std::size_t>(Rng() % NA), W});
      else if ((Rng() & 7) == 0)
        continue; // Dropped mass: substochastic row.
      else
        Chain.QEntries.push_back({R, Col(Rng), W});
    }
  }
  return Chain;
}

/// Per-block sums of a SolveMetrics must reproduce the totals (the S13
/// stats contract, in monolithic and blocked mode alike).
void expectMetricsConsistent(const SolveMetrics &M) {
  EXPECT_EQ(M.Blocks.size(), M.NumBlocks);
  std::size_t States = 0, QEntries = 0, Ops = 0, Fill = 0, MaxSize = 0;
  for (const BlockMetrics &B : M.Blocks) {
    States += B.NumStates;
    QEntries += B.NumQEntries;
    Ops += B.EliminationOps;
    Fill += B.FillIn;
    MaxSize = std::max(MaxSize, B.NumStates);
  }
  EXPECT_EQ(States, M.NumSolved);
  EXPECT_EQ(QEntries, M.NumSolvedQ);
  EXPECT_EQ(Ops, M.EliminationOps);
  EXPECT_EQ(Fill, M.FillIn);
  EXPECT_EQ(MaxSize, M.MaxBlockSize);
}

} // namespace

/// Seeded SCC-decomposition properties: the blocks are a valid partition,
/// the block relation is exactly mutual reachability, and the condensation
/// numbering is reverse-topological (hence acyclic).
class SccProperty : public ::testing::TestWithParam<unsigned> {};

TEST_P(SccProperty, DecompositionIsCorrect) {
  std::mt19937_64 Rng(GetParam());
  for (int Round = 0; Round < 30; ++Round) {
    std::uniform_int_distribution<std::size_t> Size(1, 36);
    std::uniform_int_distribution<int> Degree(0, 3);
    std::size_t N = Size(Rng);
    std::vector<std::vector<std::size_t>> Adj(N);
    std::uniform_int_distribution<std::size_t> Vertex(0, N - 1);
    for (std::size_t U = 0; U < N; ++U)
      for (int E = Degree(Rng); E-- > 0;)
        Adj[U].push_back(Vertex(Rng));

    SccDecomposition Scc = computeScc(N, Adj);

    // Valid partition: every vertex in exactly one block, ids consistent.
    ASSERT_EQ(Scc.BlockOf.size(), N);
    ASSERT_EQ(Scc.Blocks.size(), Scc.NumBlocks);
    std::vector<std::size_t> Seen(N, 0);
    for (std::size_t B = 0; B < Scc.NumBlocks; ++B) {
      EXPECT_FALSE(Scc.Blocks[B].empty());
      for (std::size_t V : Scc.Blocks[B]) {
        EXPECT_EQ(Scc.BlockOf[V], B);
        ++Seen[V];
      }
    }
    for (std::size_t V = 0; V < N; ++V)
      EXPECT_EQ(Seen[V], 1u);

    // Reachability closure by BFS from each vertex (N is small).
    std::vector<std::vector<bool>> Reach(N, std::vector<bool>(N, false));
    for (std::size_t S = 0; S < N; ++S) {
      std::vector<std::size_t> Stack = {S};
      Reach[S][S] = true;
      while (!Stack.empty()) {
        std::size_t U = Stack.back();
        Stack.pop_back();
        for (std::size_t V : Adj[U])
          if (!Reach[S][V]) {
            Reach[S][V] = true;
            Stack.push_back(V);
          }
      }
    }
    // Same block iff mutually reachable.
    for (std::size_t U = 0; U < N; ++U)
      for (std::size_t V = 0; V < N; ++V)
        EXPECT_EQ(Scc.BlockOf[U] == Scc.BlockOf[V],
                  Reach[U][V] && Reach[V][U])
            << U << " vs " << V;

    // Reverse-topological numbering: every edge points to an equal or
    // smaller block id, so the condensation is acyclic by construction.
    for (std::size_t U = 0; U < N; ++U)
      for (std::size_t V : Adj[U])
        EXPECT_GE(Scc.BlockOf[U], Scc.BlockOf[V]);
    for (std::size_t B = 0; B < Scc.NumBlocks; ++B)
      for (std::size_t S : Scc.Successors[B])
        EXPECT_LT(S, B);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, SccProperty,
                         ::testing::Values(81u, 82u, 83u, 84u));

/// Blocked solves must reproduce the monolithic results: exactly (same
/// rationals) for the exact engine, within ulps for sparse LU — serial
/// and on a shared pool.
class BlockedSolveProperty : public ::testing::TestWithParam<unsigned> {};

TEST_P(BlockedSolveProperty, BlockedEqualsMonolithic) {
  std::mt19937_64 Rng(GetParam());
  ThreadPool Pool(4);
  for (int Round = 0; Round < 25; ++Round) {
    AbsorbingChain Chain = randomChain(Rng);
    std::size_t NT = Chain.NumTransient, NA = Chain.NumAbsorbing;

    DenseMatrix<Rational> Mono;
    SolveMetrics MonoMetrics;
    ASSERT_TRUE(solveAbsorptionExact(Chain, Mono, {}, &MonoMetrics));
    expectMetricsConsistent(MonoMetrics);
    EXPECT_EQ(MonoMetrics.NumBlocks, MonoMetrics.NumSolved ? 1u : 0u);

    for (ThreadPool *Engine : {static_cast<ThreadPool *>(nullptr), &Pool}) {
      SolverStructure Structure;
      Structure.Blocked = true;
      Structure.Pool = Engine;
      DenseMatrix<Rational> Blocked;
      SolveMetrics Metrics;
      ASSERT_TRUE(solveAbsorptionExact(Chain, Blocked, Structure, &Metrics));
      expectMetricsConsistent(Metrics);
      // Same kept subsystem, finer or equal decomposition.
      EXPECT_EQ(Metrics.NumSolved, MonoMetrics.NumSolved);
      EXPECT_EQ(Metrics.NumSolvedQ, MonoMetrics.NumSolvedQ);
      EXPECT_GE(Metrics.NumBlocks, MonoMetrics.NumBlocks);
      for (std::size_t R = 0; R < NT; ++R)
        for (std::size_t C = 0; C < NA; ++C)
          EXPECT_EQ(Blocked.at(R, C), Mono.at(R, C)) << R << "," << C;

      Structure.Ordering = linalg::OrderingKind::ReverseCuthillMcKee;
      DenseMatrix<double> Direct;
      ASSERT_TRUE(solveAbsorptionDouble(Chain, Direct, SolverKind::Direct,
                                        Structure, &Metrics));
      expectMetricsConsistent(Metrics);
      for (std::size_t R = 0; R < NT; ++R)
        for (std::size_t C = 0; C < NA; ++C)
          EXPECT_NEAR(Direct.at(R, C), Mono.at(R, C).toDouble(), 1e-8);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, BlockedSolveProperty,
                         ::testing::Values(91u, 92u, 93u, 94u));

TEST(BlockedSolveTest, SingleSccExtreme) {
  // Gambler's ruin: every transient state reaches every other (birth-death
  // chain), so the blocked solve degenerates to one block == monolithic.
  AbsorbingChain Chain = gamblersRuin(8, Rational(3, 5));
  SolverStructure Structure;
  Structure.Blocked = true;
  DenseMatrix<Rational> Blocked, Mono;
  SolveMetrics Metrics;
  ASSERT_TRUE(solveAbsorptionExact(Chain, Blocked, Structure, &Metrics));
  ASSERT_TRUE(solveAbsorptionExact(Chain, Mono));
  EXPECT_EQ(Metrics.NumBlocks, 1u);
  EXPECT_EQ(Metrics.MaxBlockSize, Chain.NumTransient);
  for (std::size_t R = 0; R < Chain.NumTransient; ++R)
    for (std::size_t C = 0; C < Chain.NumAbsorbing; ++C)
      EXPECT_EQ(Blocked.at(R, C), Mono.at(R, C));
}

TEST(BlockedSolveTest, FullyDisconnectedExtreme) {
  // Self-loops only: no state communicates with any other, so every state
  // is its own block and elimination is N independent 1x1 solves.
  AbsorbingChain Chain;
  Chain.NumTransient = 6;
  Chain.NumAbsorbing = 1;
  for (std::size_t S = 0; S < 6; ++S) {
    Chain.QEntries.push_back({S, S, Rational(1, 2)});
    Chain.REntries.push_back({S, 0, Rational(1, 2)});
  }
  SolverStructure Structure;
  Structure.Blocked = true;
  DenseMatrix<Rational> A;
  SolveMetrics Metrics;
  ASSERT_TRUE(solveAbsorptionExact(Chain, A, Structure, &Metrics));
  EXPECT_EQ(Metrics.NumBlocks, 6u);
  EXPECT_EQ(Metrics.MaxBlockSize, 1u);
  EXPECT_EQ(Metrics.NumSolved, 6u);
  for (std::size_t S = 0; S < 6; ++S)
    EXPECT_EQ(A.at(S, 0), Rational(1));
}

TEST(BlockedSolveTest, DivergingStatesPrunedBeforeBlocking) {
  // The two-state loop with unreachable absorption: pruning removes both
  // states, leaving zero blocks and a zero matrix.
  AbsorbingChain Chain;
  Chain.NumTransient = 2;
  Chain.NumAbsorbing = 1;
  Chain.QEntries.push_back({0, 1, Rational(1)});
  Chain.QEntries.push_back({1, 0, Rational(1)});
  SolverStructure Structure;
  Structure.Blocked = true;
  DenseMatrix<Rational> A;
  SolveMetrics Metrics;
  ASSERT_TRUE(solveAbsorptionExact(Chain, A, Structure, &Metrics));
  EXPECT_EQ(Metrics.NumBlocks, 0u);
  EXPECT_EQ(Metrics.NumSolved, 0u);
  EXPECT_EQ(A.at(0, 0), Rational(0));
  EXPECT_EQ(A.at(1, 0), Rational(0));
}

TEST(AbsorbingTest, LongChainDirectSolver) {
  // A 400-state birth-death chain exercises sparse LU at moderate size.
  AbsorbingChain Chain = gamblersRuin(400, Rational(1, 2));
  DenseMatrix<double> A;
  ASSERT_TRUE(solveAbsorptionDouble(Chain, A, SolverKind::Direct));
  // Symmetric ruin: Pr[win | start K] = K / N.
  for (std::size_t K = 1; K < 400; K += 37)
    EXPECT_NEAR(A.at(K - 1, 1), static_cast<double>(K) / 400.0, 1e-8);
}

//===----------------------------------------------------------------------===//
// Modular exact solver (docs/ARCHITECTURE.md S14)
//===----------------------------------------------------------------------===//

/// The multi-prime engine must reproduce the Rational engine's answers
/// exactly — serial, pooled, and blocked — while reporting its prime and
/// reconstruction metrics consistently.
class ModularSolveProperty : public ::testing::TestWithParam<unsigned> {};

TEST_P(ModularSolveProperty, ModularEqualsExact) {
  std::mt19937_64 Rng(GetParam());
  ThreadPool Pool(4);
  for (int Round = 0; Round < 25; ++Round) {
    AbsorbingChain Chain = randomChain(Rng);
    std::size_t NT = Chain.NumTransient, NA = Chain.NumAbsorbing;

    DenseMatrix<Rational> Exact;
    ASSERT_TRUE(solveAbsorptionExact(Chain, Exact));

    for (ThreadPool *Engine : {static_cast<ThreadPool *>(nullptr), &Pool})
      for (bool Blocked : {false, true}) {
        SolverStructure Structure;
        Structure.Blocked = Blocked;
        Structure.Pool = Engine;
        if (Blocked)
          Structure.Ordering = linalg::OrderingKind::ReverseCuthillMcKee;
        DenseMatrix<Rational> Modular;
        SolveMetrics Metrics;
        ASSERT_TRUE(
            solveAbsorptionModular(Chain, Modular, Structure, &Metrics));
        expectMetricsConsistent(Metrics);
        for (std::size_t R = 0; R < NT; ++R)
          for (std::size_t C = 0; C < NA; ++C)
            EXPECT_EQ(Modular.at(R, C), Exact.at(R, C)) << R << "," << C;
        if (Metrics.NumSolved > 0) {
          EXPECT_GE(Metrics.NumPrimes, 1u);
          EXPECT_GT(Metrics.ReconstructionBits, 0u);
          EXPECT_EQ(Metrics.ModularFallbacks, 0u);
        }
      }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, ModularSolveProperty,
                         ::testing::Values(71u, 72u, 73u, 74u));

TEST(ModularSolveTest, VerifiedReconstructionTriggersRationalFallback) {
  // Gambler's ruin with N = 40 has absorption probabilities whose
  // denominators are near 3^40 (about 64 bits) — far outside the Wang
  // bound of a single 62-bit prime (about 2^30.5). With MaxPrimes = 1 the
  // engine either fails to reconstruct or reconstructs a wrong small
  // fraction that the fresh-prime verification rejects; both paths must
  // end in the Rational fallback, and the answer must still be exact.
  AbsorbingChain Chain = gamblersRuin(40, Rational(3, 5));
  DenseMatrix<Rational> Exact, Modular;
  ASSERT_TRUE(solveAbsorptionExact(Chain, Exact));
  SolverStructure Structure;
  Structure.Modular.MaxPrimes = 1;
  SolveMetrics Metrics;
  ASSERT_TRUE(solveAbsorptionModular(Chain, Modular, Structure, &Metrics));
  EXPECT_EQ(Metrics.ModularFallbacks, 1u);
  for (std::size_t R = 0; R < Chain.NumTransient; ++R)
    for (std::size_t C = 0; C < Chain.NumAbsorbing; ++C)
      EXPECT_EQ(Modular.at(R, C), Exact.at(R, C));

  // The default prime budget reconstructs the same system without any
  // fallback.
  SolveMetrics Full;
  ASSERT_TRUE(solveAbsorptionModular(Chain, Modular, {}, &Full));
  EXPECT_EQ(Full.ModularFallbacks, 0u);
  EXPECT_GT(Full.NumPrimes, 1u);
  for (std::size_t R = 0; R < Chain.NumTransient; ++R)
    for (std::size_t C = 0; C < Chain.NumAbsorbing; ++C)
      EXPECT_EQ(Modular.at(R, C), Exact.at(R, C));
}

TEST(ModularSolveTest, UnluckyPrimeRetriesDeterministically) {
  // A chain whose probabilities have the first table prime as their
  // denominator: that prime divides every denominator, so the solve must
  // discard it, record the retry, and still produce the exact answer.
  // The sequence is deterministic, so two runs report identical metrics.
  const std::uint64_t P0 = modPrime(0);
  ASSERT_LE(P0, static_cast<std::uint64_t>(INT64_MAX));
  const Rational Loop(1, static_cast<int64_t>(P0));
  AbsorbingChain Chain;
  Chain.NumTransient = 2;
  Chain.NumAbsorbing = 1;
  Chain.QEntries.push_back({0, 1, Loop});
  Chain.QEntries.push_back({1, 0, Loop});
  Chain.REntries.push_back({0, 0, Rational(1) - Loop});
  Chain.REntries.push_back({1, 0, Rational(1) - Loop});
  ASSERT_TRUE(rowsAreStochastic(Chain));

  SolveMetrics First, Second;
  DenseMatrix<Rational> A;
  ASSERT_TRUE(solveAbsorptionModular(Chain, A, {}, &First));
  EXPECT_GE(First.RetriedPrimes, 1u);
  EXPECT_EQ(A.at(0, 0), Rational(1));
  EXPECT_EQ(A.at(1, 0), Rational(1));
  ASSERT_TRUE(solveAbsorptionModular(Chain, A, {}, &Second));
  EXPECT_EQ(First.RetriedPrimes, Second.RetriedPrimes);
  EXPECT_EQ(First.NumPrimes, Second.NumPrimes);
  EXPECT_EQ(First.ReconstructionBits, Second.ReconstructionBits);

  // Starting the prime walk past the poisoned entry skips the retry:
  // the FirstPrimeIndex knob replays any table position directly.
  SolverStructure Skip;
  Skip.Modular.FirstPrimeIndex = 1;
  SolveMetrics Skipped;
  ASSERT_TRUE(solveAbsorptionModular(Chain, A, Skip, &Skipped));
  EXPECT_EQ(Skipped.RetriedPrimes, 0u);
  EXPECT_EQ(A.at(0, 0), Rational(1));
}
