//===----------------------------------------------------------------------===//
///
/// \file
/// Absorbing Markov chain tests: textbook chains with known closed forms
/// (gambler's ruin, §4's coin-flip example), cross-engine agreement between
/// exact, direct, and iterative solvers, and singularity detection for
/// chains with unreachable absorption.
///
//===----------------------------------------------------------------------===//

#include "markov/Absorbing.h"

#include <gtest/gtest.h>

#include <random>

using namespace mcnk;
using namespace mcnk::markov;
using linalg::DenseMatrix;

namespace {

/// Gambler's ruin on {0..N} with win probability P: transient 1..N-1,
/// absorbing 0 and N. Absorption probability into N starting from K is
/// ((q/p)^K - 1)/((q/p)^N - 1) for p != q.
AbsorbingChain gamblersRuin(std::size_t N, const Rational &P) {
  AbsorbingChain Chain;
  Chain.NumTransient = N - 1;
  Chain.NumAbsorbing = 2; // 0 = ruin, 1 = win.
  Rational Q = Rational(1) - P;
  for (std::size_t K = 1; K < N; ++K) {
    std::size_t Row = K - 1;
    if (K + 1 < N)
      Chain.QEntries.push_back({Row, Row + 1, P});
    else
      Chain.REntries.push_back({Row, 1, P});
    if (K - 1 >= 1)
      Chain.QEntries.push_back({Row, Row - 1, Q});
    else
      Chain.REntries.push_back({Row, 0, Q});
  }
  return Chain;
}

} // namespace

TEST(AbsorbingTest, CoinFlipLoopFromPaper) {
  // The §4 example: p* with p = (f<-0 ⊕_1/2 f<-1) keeps flipping; from the
  // small-step chain's perspective a single state loops with prob 1/2 and
  // absorbs into each of two outcomes with prob 1/4... Simplified model:
  // one transient state, self-loop 1/2, absorption 1/4 + 1/4.
  AbsorbingChain Chain;
  Chain.NumTransient = 1;
  Chain.NumAbsorbing = 2;
  Chain.QEntries.push_back({0, 0, Rational(1, 2)});
  Chain.REntries.push_back({0, 0, Rational(1, 4)});
  Chain.REntries.push_back({0, 1, Rational(1, 4)});
  ASSERT_TRUE(rowsAreStochastic(Chain));

  DenseMatrix<Rational> A;
  ASSERT_TRUE(solveAbsorptionExact(Chain, A));
  EXPECT_EQ(A.at(0, 0), Rational(1, 2));
  EXPECT_EQ(A.at(0, 1), Rational(1, 2));
}

TEST(AbsorbingTest, GamblersRuinExactMatchesClosedForm) {
  // N=5, p=2/3: ratio r = q/p = 1/2; Pr[win | start K] =
  // (1 - r^K)/(1 - r^N).
  AbsorbingChain Chain = gamblersRuin(5, Rational(2, 3));
  ASSERT_TRUE(rowsAreStochastic(Chain));
  DenseMatrix<Rational> A;
  ASSERT_TRUE(solveAbsorptionExact(Chain, A));
  Rational RatioPow(1);
  const Rational Ratio(1, 2);
  Rational Denom = Rational(1) - Rational(1, 32); // 1 - r^5
  for (std::size_t K = 1; K <= 4; ++K) {
    RatioPow *= Ratio;
    Rational Expected = (Rational(1) - RatioPow) / Denom;
    EXPECT_EQ(A.at(K - 1, 1), Expected) << "start " << K;
    // Rows of the absorption matrix are stochastic (total absorption = 1).
    EXPECT_EQ(A.at(K - 1, 0) + A.at(K - 1, 1), Rational(1));
  }
}

TEST(AbsorbingTest, EnginesAgree) {
  AbsorbingChain Chain = gamblersRuin(8, Rational(3, 5));
  DenseMatrix<Rational> Exact;
  ASSERT_TRUE(solveAbsorptionExact(Chain, Exact));

  DenseMatrix<double> Direct, Iterative;
  ASSERT_TRUE(solveAbsorptionDouble(Chain, Direct, SolverKind::Direct));
  ASSERT_TRUE(solveAbsorptionDouble(Chain, Iterative, SolverKind::Iterative));

  for (std::size_t R = 0; R < Chain.NumTransient; ++R)
    for (std::size_t C = 0; C < Chain.NumAbsorbing; ++C) {
      double Reference = Exact.at(R, C).toDouble();
      EXPECT_NEAR(Direct.at(R, C), Reference, 1e-10);
      EXPECT_NEAR(Iterative.at(R, C), Reference, 1e-9);
    }
}

TEST(AbsorbingTest, SubStochasticRowsLoseMass) {
  // A row that drops mass (models a drop action): absorption sums < 1.
  AbsorbingChain Chain;
  Chain.NumTransient = 1;
  Chain.NumAbsorbing = 1;
  Chain.QEntries.push_back({0, 0, Rational(1, 2)});
  Chain.REntries.push_back({0, 0, Rational(1, 4)});
  EXPECT_FALSE(rowsAreStochastic(Chain));
  DenseMatrix<Rational> A;
  ASSERT_TRUE(solveAbsorptionExact(Chain, A));
  // Σ (1/2)^n * 1/4 = 1/2.
  EXPECT_EQ(A.at(0, 0), Rational(1, 2));
}

TEST(AbsorbingTest, DivergingStatesDropAllMass) {
  // Two transient states that only communicate with each other: absorption
  // is unreachable, so the absorption probabilities are zero. ProbNetKAT
  // interprets the lost mass as landing on ∅ (the loop diverges ≡ drop).
  AbsorbingChain Chain;
  Chain.NumTransient = 2;
  Chain.NumAbsorbing = 1;
  Chain.QEntries.push_back({0, 1, Rational(1)});
  Chain.QEntries.push_back({1, 0, Rational(1)});
  DenseMatrix<Rational> A;
  ASSERT_TRUE(solveAbsorptionExact(Chain, A));
  EXPECT_EQ(A.at(0, 0), Rational(0));
  EXPECT_EQ(A.at(1, 0), Rational(0));
  DenseMatrix<double> AD;
  ASSERT_TRUE(solveAbsorptionDouble(Chain, AD, SolverKind::Direct));
  EXPECT_DOUBLE_EQ(AD.at(0, 0), 0.0);
  ASSERT_TRUE(solveAbsorptionDouble(Chain, AD, SolverKind::Iterative));
  EXPECT_DOUBLE_EQ(AD.at(1, 0), 0.0);
}

TEST(AbsorbingTest, PartiallyDivergingChain) {
  // State 0 flips a fair coin: heads -> absorb, tails -> state 1 which
  // loops forever. Absorption probability from state 0 is exactly 1/2.
  AbsorbingChain Chain;
  Chain.NumTransient = 2;
  Chain.NumAbsorbing = 1;
  Chain.QEntries.push_back({0, 1, Rational(1, 2)});
  Chain.QEntries.push_back({1, 1, Rational(1)});
  Chain.REntries.push_back({0, 0, Rational(1, 2)});
  DenseMatrix<Rational> A;
  ASSERT_TRUE(solveAbsorptionExact(Chain, A));
  EXPECT_EQ(A.at(0, 0), Rational(1, 2));
  EXPECT_EQ(A.at(1, 0), Rational(0));
  DenseMatrix<double> AD;
  ASSERT_TRUE(solveAbsorptionDouble(Chain, AD, SolverKind::Direct));
  EXPECT_NEAR(AD.at(0, 0), 0.5, 1e-12);
  EXPECT_NEAR(AD.at(1, 0), 0.0, 1e-12);
}

TEST(AbsorbingTest, EmptyChainTrivial) {
  AbsorbingChain Chain;
  Chain.NumTransient = 0;
  Chain.NumAbsorbing = 3;
  DenseMatrix<double> A;
  ASSERT_TRUE(solveAbsorptionDouble(Chain, A, SolverKind::Direct));
  EXPECT_EQ(A.numRows(), 0u);
  EXPECT_EQ(A.numCols(), 3u);
}

/// Randomized chains: the exact sparse Gauss-Jordan engine and the sparse
/// LU engine must agree entry-wise, and no row may exceed total mass one.
class AbsorbingEngineProperty : public ::testing::TestWithParam<unsigned> {};

TEST_P(AbsorbingEngineProperty, ExactAndDirectAgree) {
  std::mt19937_64 Rng(GetParam());
  for (int Round = 0; Round < 40; ++Round) {
    std::uniform_int_distribution<std::size_t> Size(2, 40);
    std::size_t NT = Size(Rng), NA = 2;
    AbsorbingChain Chain;
    Chain.NumTransient = NT;
    Chain.NumAbsorbing = NA;
    std::uniform_int_distribution<int> Den(2, 6);
    std::uniform_int_distribution<std::size_t> Col(0, NT - 1);
    for (std::size_t R = 0; R < NT; ++R) {
      int D = Den(Rng);
      for (int I = 0; I < D; ++I) {
        Rational W(1, D);
        if (I == 0 && (Rng() & 3) == 0)
          Chain.REntries.push_back(
              {R, static_cast<std::size_t>(Rng() % NA), W});
        else if ((Rng() & 7) == 0)
          continue; // Dropped mass: substochastic row.
        else
          Chain.QEntries.push_back({R, Col(Rng), W});
      }
    }
    DenseMatrix<Rational> Exact;
    DenseMatrix<double> Direct;
    ASSERT_TRUE(solveAbsorptionExact(Chain, Exact));
    ASSERT_TRUE(solveAbsorptionDouble(Chain, Direct, SolverKind::Direct));
    for (std::size_t R = 0; R < NT; ++R) {
      Rational RowSum;
      for (std::size_t A = 0; A < NA; ++A) {
        EXPECT_NEAR(Exact.at(R, A).toDouble(), Direct.at(R, A), 1e-8);
        RowSum += Exact.at(R, A);
      }
      EXPECT_LE(RowSum, Rational(1));
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, AbsorbingEngineProperty,
                         ::testing::Values(61u, 62u, 63u, 64u));

TEST(AbsorbingTest, LongChainDirectSolver) {
  // A 400-state birth-death chain exercises sparse LU at moderate size.
  AbsorbingChain Chain = gamblersRuin(400, Rational(1, 2));
  DenseMatrix<double> A;
  ASSERT_TRUE(solveAbsorptionDouble(Chain, A, SolverKind::Direct));
  // Symmetric ruin: Pr[win | start K] = K / N.
  for (std::size_t K = 1; K < 400; K += 37)
    EXPECT_NEAR(A.at(K - 1, 1), static_cast<double>(K) / 400.0, 1e-8);
}
