//===----------------------------------------------------------------------===//
///
/// \file
/// Deeper FDD property suites: the action algebra, closed-form loop
/// solving against textbook closed forms (gambler's ruin expressed as a
/// ProbNetKAT program), algebraic-law sweeps on random subterms (canonical
/// diagrams turn semantic laws into reference equalities), and
/// export/import preservation on random programs.
///
//===----------------------------------------------------------------------===//

#include "ast/Context.h"
#include "fdd/Action.h"
#include "fdd/Compile.h"
#include "fdd/Export.h"
#include "fdd/Query.h"

#include <gtest/gtest.h>

#include <random>

using namespace mcnk;
using namespace mcnk::fdd;
using ast::Context;
using ast::Node;

//===----------------------------------------------------------------------===//
// Action algebra
//===----------------------------------------------------------------------===//

TEST(ActionTest, ThenComposition) {
  Action A = Action::modify({{0, 1}, {2, 3}});
  Action B = Action::modify({{0, 9}, {1, 7}});
  Action C = A.then(B);
  // B's writes win on overlap; union elsewhere.
  EXPECT_EQ(C.writeTo(0), std::optional<FieldValue>(9));
  EXPECT_EQ(C.writeTo(1), std::optional<FieldValue>(7));
  EXPECT_EQ(C.writeTo(2), std::optional<FieldValue>(3));
  EXPECT_EQ(C.writeTo(5), std::nullopt);
  // Identity laws.
  EXPECT_EQ(Action().then(A), A);
  EXPECT_EQ(A.then(Action()), A);
  // Drop absorbs.
  EXPECT_TRUE(A.then(Action::drop()).isDrop());
  EXPECT_TRUE(Action::drop().then(A).isDrop());
  // Associativity on a sample.
  Action D = Action::modify({{1, 1}});
  EXPECT_EQ(A.then(B).then(D), A.then(B.then(D)));
}

TEST(ActionTest, ModifyNormalizes) {
  // Unsorted input with a duplicate field: last write wins, sorted output.
  Action A = Action::modify({{3, 1}, {0, 2}, {3, 9}});
  ASSERT_EQ(A.mods().size(), 2u);
  EXPECT_EQ(A.mods()[0], (Action::Mod{0, 2}));
  EXPECT_EQ(A.mods()[1], (Action::Mod{3, 9}));
  EXPECT_EQ(A.dropMod(3).mods().size(), 1u);
}

TEST(ActionTest, ApplyToPacket) {
  Packet P(4);
  P.set(1, 5);
  Action A = Action::modify({{1, 7}, {3, 2}});
  Packet Q = A.applyTo(P);
  EXPECT_EQ(Q.get(1), 7u);
  EXPECT_EQ(Q.get(3), 2u);
  EXPECT_EQ(Q.get(0), 0u);
}

TEST(ActionDistTest, ConvexAndMerge) {
  ActionDist A = ActionDist::dirac(Action::modify({{0, 1}}));
  ActionDist B = ActionDist::dirac(Action::drop());
  ActionDist C = ActionDist::convex(Rational(1, 4), A, B);
  EXPECT_EQ(C.dropMass(), Rational(3, 4));
  EXPECT_FALSE(C.isDirac());
  // Convex of equal distributions is the distribution itself.
  EXPECT_EQ(ActionDist::convex(Rational(1, 3), A, A), A);
  // fromEntries merges duplicates.
  ActionDist D = ActionDist::fromEntries({{Action::drop(), Rational(1, 2)},
                                          {Action::drop(), Rational(1, 2)}});
  EXPECT_TRUE(D.isDirac());
  EXPECT_EQ(D.dropMass(), Rational(1));
}

//===----------------------------------------------------------------------===//
// Gambler's ruin, as a ProbNetKAT program through the whole pipeline
//===----------------------------------------------------------------------===//

class GamblersRuinProgram
    : public ::testing::TestWithParam<std::pair<int, int>> {};

TEST_P(GamblersRuinProgram, LoopSolveMatchesClosedForm) {
  auto [N, StartPos] = GetParam();
  Context Ctx;
  FieldId Pos = Ctx.field("pos");

  // while 0 < pos < N: pos += 1 with 2/3, pos -= 1 with 1/3.
  const Node *Guard = Ctx.drop();
  for (int I = 1; I < N; ++I)
    Guard = Ctx.unite(Guard, Ctx.test(Pos, static_cast<FieldValue>(I)));
  const Node *Step = Ctx.drop();
  // Build the body as a cascade: if pos=i then (pos:=i+1 ⊕ pos:=i-1).
  for (int I = N - 1; I >= 1; --I)
    Step = Ctx.ite(
        Ctx.test(Pos, static_cast<FieldValue>(I)),
        Ctx.choice(Rational(2, 3),
                   Ctx.assign(Pos, static_cast<FieldValue>(I + 1)),
                   Ctx.assign(Pos, static_cast<FieldValue>(I - 1))),
        Step);
  const Node *Program = Ctx.whileLoop(Guard, Step);

  FddManager M; // Exact.
  FddRef Ref = compile(M, Program);
  Packet In(1);
  In.set(Pos, static_cast<FieldValue>(StartPos));
  auto Out = M.outputDistribution(Ref, In);

  // Pr[absorb at N | start k] = (1 - r^k)/(1 - r^N) with r = q/p = 1/2.
  Rational RPowK = Rational(BigInt(1), BigInt(1).shl(StartPos));
  Rational RPowN = Rational(BigInt(1), BigInt(1).shl(N));
  Rational WinExpected =
      (Rational(1) - RPowK) / (Rational(1) - RPowN);
  Packet Win(1), Ruin(1);
  Win.set(Pos, static_cast<FieldValue>(N));
  Ruin.set(Pos, 0);
  EXPECT_EQ(Out.Outputs[Win], WinExpected);
  EXPECT_EQ(Out.Outputs[Ruin], Rational(1) - WinExpected);
  EXPECT_EQ(Out.Dropped, Rational(0));
}

INSTANTIATE_TEST_SUITE_P(Walks, GamblersRuinProgram,
                         ::testing::Values(std::make_pair(5, 1),
                                           std::make_pair(5, 3),
                                           std::make_pair(9, 4),
                                           std::make_pair(12, 6)));

//===----------------------------------------------------------------------===//
// Algebraic-law sweep on random subterms
//===----------------------------------------------------------------------===//

namespace {

struct LawFixture {
  Context Ctx;
  FieldId A = Ctx.field("a");
  FieldId B = Ctx.field("b");
  FddManager M;
  std::mt19937_64 Rng;

  explicit LawFixture(unsigned Seed) : Rng(Seed) {}

  const Node *randomProgram(unsigned Depth) {
    std::uniform_int_distribution<int> Pick(0, Depth == 0 ? 2 : 6);
    auto Value = [&] {
      return std::uniform_int_distribution<FieldValue>(0, 2)(Rng);
    };
    auto Field = [&] {
      return std::uniform_int_distribution<int>(0, 1)(Rng) ? A : B;
    };
    switch (Pick(Rng)) {
    case 0:
      return Ctx.assign(Field(), Value());
    case 1:
      return Ctx.test(Field(), Value());
    case 2:
      return Ctx.skip();
    case 3:
      return Ctx.seq(randomProgram(Depth - 1), randomProgram(Depth - 1));
    case 4:
      return Ctx.choice(Rational(1, 2), randomProgram(Depth - 1),
                        randomProgram(Depth - 1));
    case 5:
      return Ctx.ite(Ctx.test(Field(), Value()),
                     randomProgram(Depth - 1), randomProgram(Depth - 1));
    default:
      return Ctx.drop();
    }
  }

  const Node *randomPredicate(unsigned Depth) {
    std::uniform_int_distribution<int> Pick(0, Depth == 0 ? 0 : 3);
    auto Value = [&] {
      return std::uniform_int_distribution<FieldValue>(0, 2)(Rng);
    };
    switch (Pick(Rng)) {
    case 0:
      return Ctx.test(std::uniform_int_distribution<int>(0, 1)(Rng) ? A : B,
                      Value());
    case 1:
      return Ctx.negate(randomPredicate(Depth - 1));
    case 2:
      return Ctx.unite(randomPredicate(Depth - 1),
                       randomPredicate(Depth - 1));
    default:
      return Ctx.seq(randomPredicate(Depth - 1),
                     randomPredicate(Depth - 1));
    }
  }
};

} // namespace

class AlgebraicLaws : public ::testing::TestWithParam<unsigned> {};

TEST_P(AlgebraicLaws, HoldByReferenceEquality) {
  LawFixture F(GetParam());
  Context &Ctx = F.Ctx;
  FddManager &M = F.M;

  for (int Round = 0; Round < 25; ++Round) {
    const Node *P = F.randomProgram(2);
    const Node *Q = F.randomProgram(2);
    const Node *R = F.randomProgram(2);
    const Node *T = F.randomPredicate(2);
    Rational Prob(std::uniform_int_distribution<int>(1, 3)(F.Rng), 4);

    auto C = [&](const Node *X) { return compile(M, X); };

    // Sequential composition is associative with unit skip.
    EXPECT_EQ(C(Ctx.seq(P, Ctx.seq(Q, R))), C(Ctx.seq(Ctx.seq(P, Q), R)));
    // Choice: skew/commutation and idempotence.
    EXPECT_EQ(C(Ctx.choice(Prob, P, Q)),
              C(Ctx.choice(Rational(1) - Prob, Q, P)));
    EXPECT_EQ(C(Ctx.choice(Prob, P, P)), C(P));
    // Left distributivity of ; over ⊕ (holds in ProbNetKAT).
    EXPECT_EQ(C(Ctx.seq(Ctx.choice(Prob, P, Q), R)),
              C(Ctx.choice(Prob, Ctx.seq(P, R), Ctx.seq(Q, R))));
    // Guard laws: if t then p else p ≡ p; branch flipping.
    EXPECT_EQ(C(Ctx.ite(T, P, P)), C(P));
    EXPECT_EQ(C(Ctx.ite(T, P, Q)), C(Ctx.ite(Ctx.negate(T), Q, P)));
    // Predicate conjunction with its negation annihilates the branch.
    EXPECT_EQ(C(Ctx.seq(T, Ctx.seq(Ctx.negate(T), P))), C(Ctx.drop()));
    // if t then (t ; p) else q ≡ if t then p else q (guard absorption).
    EXPECT_EQ(C(Ctx.ite(T, Ctx.seq(T, P), Q)), C(Ctx.ite(T, P, Q)));
    // Refinement: every program refines itself and drop refines it.
    EXPECT_TRUE(refines(M, C(P), C(P)));
    EXPECT_TRUE(refines(M, C(Ctx.drop()), C(P)));
    // p ⊕ drop refines p.
    EXPECT_TRUE(refines(M, C(Ctx.choice(Prob, P, Ctx.drop())), C(P)));
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, AlgebraicLaws,
                         ::testing::Values(71u, 72u, 73u, 74u, 75u));

//===----------------------------------------------------------------------===//
// Export/import preservation on random programs
//===----------------------------------------------------------------------===//

class ExportProperty : public ::testing::TestWithParam<unsigned> {};

TEST_P(ExportProperty, RoundTripPreservesBehavior) {
  LawFixture F(GetParam());
  FddManager Fresh;
  for (int Round = 0; Round < 20; ++Round) {
    const Node *P = F.randomProgram(3);
    FddRef Ref = compile(F.M, P);
    PortableFdd Portable = exportFdd(F.M, Ref);
    // Re-import into the same manager: identical diagram.
    EXPECT_EQ(importFdd(F.M, Portable), Ref);
    // Import into a fresh manager: identical behavior on all inputs.
    FddRef Copy = importFdd(Fresh, Portable);
    for (FieldValue VA = 0; VA <= 2; ++VA)
      for (FieldValue VB = 0; VB <= 2; ++VB) {
        Packet In(2);
        In.set(F.A, VA);
        In.set(F.B, VB);
        auto D1 = F.M.outputDistribution(Ref, In);
        auto D2 = Fresh.outputDistribution(Copy, In);
        EXPECT_EQ(D1.Outputs, D2.Outputs);
        EXPECT_EQ(D1.Dropped, D2.Dropped);
      }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, ExportProperty,
                         ::testing::Values(81u, 82u, 83u));
