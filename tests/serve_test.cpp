//===----------------------------------------------------------------------===//
///
/// \file
/// Tests for the serving layer (ARCHITECTURE S16): the on-disk cache
/// store (record codec, round-trip, torn-tail recovery, version gating,
/// adversarial decode), the line-protocol JSON, the Session request loop,
/// and concurrent sessions over one shared Service (the TSan target).
///
//===----------------------------------------------------------------------===//

#include "analysis/Verifier.h"
#include "fdd/CacheStore.h"
#include "fdd/Export.h"
#include "parser/Parser.h"
#include "serve/Json.h"
#include "serve/Server.h"

#include "gtest/gtest.h"

#include <atomic>
#include <cstdio>
#include <fstream>
#include <sstream>
#include <thread>

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

using namespace mcnk;

namespace {

/// A unique path under the test temp dir (no file created yet).
std::string tempPath(const std::string &Name) {
  static int Counter = 0;
  return testing::TempDir() + "serve_test_" + Name + "_" +
         std::to_string(Counter++) + ".mcnkfdd";
}

/// Compiles a source program and exports its diagram (helper for codec
/// tests that want realistic multi-node diagrams).
fdd::PortableFdd compileToPortable(const std::string &Source) {
  ast::Context Ctx;
  parser::ParseResult R = parser::parseProgram(Source, Ctx);
  EXPECT_TRUE(R.ok());
  analysis::Verifier V;
  return fdd::exportFdd(V.manager(), V.compile(R.Program));
}

/// A program big enough (>= 16 AST nodes) that the compile cache's
/// CacheMinNodes gate admits its top-level fingerprint.
const char *BigProgram =
    "if sw=1 then pt:=2 ; sw:=2 ; hops:=1 "
    "else if sw=2 then ((pt:=3 ; sw:=3 ; hops:=2) +[1/2] drop) "
    "else drop";

std::vector<uint8_t> readFileBytes(const std::string &Path) {
  std::ifstream In(Path, std::ios::binary);
  EXPECT_TRUE(In.good());
  return std::vector<uint8_t>(std::istreambuf_iterator<char>(In),
                              std::istreambuf_iterator<char>());
}

void writeFileBytes(const std::string &Path,
                    const std::vector<uint8_t> &Bytes) {
  std::ofstream Out(Path, std::ios::binary | std::ios::trunc);
  Out.write(reinterpret_cast<const char *>(Bytes.data()),
            static_cast<std::streamsize>(Bytes.size()));
  ASSERT_TRUE(Out.good());
}

//===----------------------------------------------------------------------===//
// Record codec
//===----------------------------------------------------------------------===//

TEST(CacheRecordCodec, RoundTripsRealDiagrams) {
  for (const char *Source :
       {"sw:=1", "drop", "if sw=1 then pt:=2 else drop",
        "while sw=1 do (sw:=2 +[1/3] sw:=1)", BigProgram}) {
    fdd::CacheRecord Record;
    Record.Key = {0x0123456789abcdefULL, 0xfedcba9876543210ULL};
    Record.Solver = markov::SolverKind::ModularExact;
    Record.Diagram = compileToPortable(Source);

    std::vector<uint8_t> Bytes = fdd::encodeCacheRecord(Record);
    fdd::CacheRecord Back;
    std::string Error;
    ASSERT_TRUE(fdd::decodeCacheRecord(Bytes.data(), Bytes.size(), Back,
                                       &Error))
        << Source << ": " << Error;
    EXPECT_EQ(Back.Key, Record.Key);
    EXPECT_EQ(Back.Solver, Record.Solver);
    ASSERT_EQ(Back.Diagram.Nodes.size(), Record.Diagram.Nodes.size());
    EXPECT_EQ(Back.Diagram.Root, Record.Diagram.Root);
    for (std::size_t I = 0; I < Back.Diagram.Nodes.size(); ++I) {
      const fdd::PortableFdd::Node &A = Back.Diagram.Nodes[I];
      const fdd::PortableFdd::Node &B = Record.Diagram.Nodes[I];
      EXPECT_EQ(A.IsLeaf, B.IsLeaf);
      if (A.IsLeaf) {
        EXPECT_EQ(A.Dist, B.Dist);
      } else {
        EXPECT_EQ(A.Field, B.Field);
        EXPECT_EQ(A.Value, B.Value);
        EXPECT_EQ(A.Hi, B.Hi);
        EXPECT_EQ(A.Lo, B.Lo);
      }
    }
  }
}

TEST(CacheRecordCodec, EveryTruncationFailsCleanly) {
  fdd::CacheRecord Record;
  Record.Key = {1, 2};
  Record.Diagram = compileToPortable(BigProgram);
  std::vector<uint8_t> Bytes = fdd::encodeCacheRecord(Record);
  for (std::size_t Len = 0; Len < Bytes.size(); ++Len) {
    fdd::CacheRecord Out;
    std::string Error;
    EXPECT_FALSE(fdd::decodeCacheRecord(Bytes.data(), Len, Out, &Error))
        << "truncation to " << Len << " bytes decoded successfully";
    EXPECT_FALSE(Error.empty());
  }
  // Trailing garbage must be rejected too, not silently ignored.
  std::vector<uint8_t> Longer = Bytes;
  Longer.push_back(0);
  fdd::CacheRecord Out;
  EXPECT_FALSE(fdd::decodeCacheRecord(Longer.data(), Longer.size(), Out));
}

TEST(CacheRecordCodec, BitFlipsNeverCrashAndNeverYieldInvalidDiagrams) {
  fdd::CacheRecord Record;
  Record.Key = {42, 7};
  Record.Diagram =
      compileToPortable("if sw=1 then (pt:=2 +[1/3] drop) else pt:=1");
  std::vector<uint8_t> Bytes = fdd::encodeCacheRecord(Record);
  // Every single-bit corruption: decode must either fail cleanly or
  // produce a diagram that still passes full validation — those are the
  // only two outcomes that keep a hostile store from corrupting a
  // manager. (ASan/UBSan configurations of this suite make "no UB" a
  // checked property, not a hope.)
  for (std::size_t I = 0; I < Bytes.size(); ++I) {
    for (int Bit = 0; Bit < 8; ++Bit) {
      std::vector<uint8_t> Mutated = Bytes;
      Mutated[I] ^= static_cast<uint8_t>(1u << Bit);
      fdd::CacheRecord Out;
      std::string Error;
      if (fdd::decodeCacheRecord(Mutated.data(), Mutated.size(), Out,
                                 &Error))
        EXPECT_TRUE(fdd::validateFdd(Out.Diagram));
      else
        EXPECT_FALSE(Error.empty());
    }
  }
}

TEST(CacheRecordCodec, RejectsHostileCounts) {
  // A record whose node count claims 2^31 nodes but carries 4 bytes: the
  // count sanity check must reject it without attempting the reserve.
  fdd::CacheRecord Record;
  Record.Key = {1, 1};
  Record.Diagram = compileToPortable("sw:=1");
  std::vector<uint8_t> Bytes = fdd::encodeCacheRecord(Record);
  // Layout: 8 key.lo + 8 key.hi + 1 solver + 4 root, then 4 node count.
  const std::size_t CountOffset = 8 + 8 + 1 + 4;
  ASSERT_GT(Bytes.size(), CountOffset + 4);
  for (unsigned I = 0; I < 4; ++I)
    Bytes[CountOffset + I] = 0xff;
  fdd::CacheRecord Out;
  std::string Error;
  EXPECT_FALSE(
      fdd::decodeCacheRecord(Bytes.data(), Bytes.size(), Out, &Error));
  EXPECT_FALSE(Error.empty());
}

//===----------------------------------------------------------------------===//
// CacheStore
//===----------------------------------------------------------------------===//

TEST(CacheStore, RoundTripsAcrossReopen) {
  std::string Path = tempPath("roundtrip");
  fdd::PortableFdd Diagram = compileToPortable(BigProgram);
  {
    std::string Error;
    auto Store = fdd::CacheStore::open(Path, &Error);
    ASSERT_TRUE(Store) << Error;
    fdd::CompileCache Fresh(8);
    EXPECT_EQ(Store->warm(Fresh), 0u); // Fresh file: nothing to warm.
    ASSERT_TRUE(Store->append({1, 2}, markov::SolverKind::Exact, Diagram,
                              &Error))
        << Error;
    ASSERT_TRUE(Store->append({3, 4}, markov::SolverKind::Direct, Diagram,
                              &Error))
        << Error;
    EXPECT_EQ(Store->stats().LiveRecords, 2u);
  }
  {
    std::string Error;
    auto Store = fdd::CacheStore::open(Path, &Error);
    ASSERT_TRUE(Store) << Error;
    fdd::CompileCache Cache(8);
    EXPECT_EQ(Store->warm(Cache), 2u);
    std::shared_ptr<const fdd::PortableFdd> Hit;
    EXPECT_TRUE(Cache.lookup({1, 2}, markov::SolverKind::Exact, Hit));
    ASSERT_TRUE(Hit);
    EXPECT_EQ(Hit->Nodes.size(), Diagram.Nodes.size());
    // Same fingerprint, different solver kind: distinct entry.
    EXPECT_TRUE(Cache.lookup({3, 4}, markov::SolverKind::Direct, Hit));
    EXPECT_FALSE(Cache.lookup({3, 4}, markov::SolverKind::Exact, Hit));
  }
  std::remove(Path.c_str());
}

TEST(CacheStore, NewestRecordPerKeyWinsAndCompactionDropsTheDead) {
  std::string Path = tempPath("compact");
  fdd::PortableFdd Old = compileToPortable("sw:=1");
  fdd::PortableFdd New = compileToPortable("if sw=1 then pt:=2 else drop");
  std::string Error;
  auto Store = fdd::CacheStore::open(Path, &Error);
  ASSERT_TRUE(Store) << Error;
  for (int I = 0; I < 5; ++I)
    ASSERT_TRUE(Store->append({9, 9}, markov::SolverKind::Exact,
                              I == 4 ? New : Old));
  fdd::CacheStore::Stats S = Store->stats();
  EXPECT_EQ(S.LiveRecords, 1u);
  EXPECT_EQ(S.DeadRecords, 4u);
  std::size_t BytesBefore = S.FileBytes;
  ASSERT_TRUE(Store->compact(&Error)) << Error;
  S = Store->stats();
  EXPECT_EQ(S.LiveRecords, 1u);
  EXPECT_EQ(S.DeadRecords, 0u);
  EXPECT_LT(S.FileBytes, BytesBefore);
  EXPECT_EQ(S.Compactions, 1u);
  // The surviving record is the newest one.
  auto Reopened = fdd::CacheStore::open(Path, &Error);
  ASSERT_TRUE(Reopened) << Error;
  fdd::CompileCache Cache(8);
  ASSERT_EQ(Reopened->warm(Cache), 1u);
  std::shared_ptr<const fdd::PortableFdd> Hit;
  ASSERT_TRUE(Cache.lookup({9, 9}, markov::SolverKind::Exact, Hit));
  EXPECT_EQ(Hit->Nodes.size(), New.Nodes.size());
  std::remove(Path.c_str());
}

TEST(CacheStore, TornTailIsTruncatedNotTrusted) {
  std::string Path = tempPath("torn");
  fdd::PortableFdd Diagram = compileToPortable("sw:=1 ; pt:=2");
  std::string Error;
  {
    auto Store = fdd::CacheStore::open(Path, &Error);
    ASSERT_TRUE(Store) << Error;
    ASSERT_TRUE(Store->append({5, 6}, markov::SolverKind::Exact, Diagram));
  }
  // Simulate a crash mid-append: a record prefix promising more bytes
  // than the file holds.
  std::vector<uint8_t> Bytes = readFileBytes(Path);
  std::size_t IntactSize = Bytes.size();
  for (uint8_t B : {0x40, 0x00, 0x00, 0x00, 0xde, 0xad})
    Bytes.push_back(B);
  writeFileBytes(Path, Bytes);
  {
    auto Store = fdd::CacheStore::open(Path, &Error);
    ASSERT_TRUE(Store) << Error;
    EXPECT_EQ(Store->stats().TornBytesDropped, 6u);
    EXPECT_EQ(Store->stats().LiveRecords, 1u);
    // The truncation happened on disk, so appends restart cleanly...
    ASSERT_TRUE(Store->append({7, 8}, markov::SolverKind::Exact, Diagram));
  }
  // ...and a third open sees both records and no torn bytes.
  auto Store = fdd::CacheStore::open(Path, &Error);
  ASSERT_TRUE(Store) << Error;
  EXPECT_EQ(Store->stats().TornBytesDropped, 0u);
  EXPECT_EQ(Store->stats().LiveRecords, 2u);
  EXPECT_GT(readFileBytes(Path).size(), IntactSize);
  std::remove(Path.c_str());
}

TEST(CacheStore, ChecksumMismatchDropsTheTail) {
  std::string Path = tempPath("checksum");
  fdd::PortableFdd Diagram = compileToPortable("sw:=1");
  std::string Error;
  std::size_t OneRecordSize = 0;
  {
    auto Store = fdd::CacheStore::open(Path, &Error);
    ASSERT_TRUE(Store) << Error;
    ASSERT_TRUE(Store->append({1, 1}, markov::SolverKind::Exact, Diagram));
    OneRecordSize = Store->stats().FileBytes;
    ASSERT_TRUE(Store->append({2, 2}, markov::SolverKind::Exact, Diagram));
  }
  // Flip one payload byte of the second record: its checksum no longer
  // matches, so open() must keep record one and drop the rest.
  std::vector<uint8_t> Bytes = readFileBytes(Path);
  Bytes[OneRecordSize + 20] ^= 0xff;
  writeFileBytes(Path, Bytes);
  auto Store = fdd::CacheStore::open(Path, &Error);
  ASSERT_TRUE(Store) << Error;
  EXPECT_EQ(Store->stats().LiveRecords, 1u);
  EXPECT_GT(Store->stats().TornBytesDropped, 0u);
  fdd::CompileCache Cache(8);
  EXPECT_EQ(Store->warm(Cache), 1u);
  std::shared_ptr<const fdd::PortableFdd> Hit;
  EXPECT_TRUE(Cache.lookup({1, 1}, markov::SolverKind::Exact, Hit));
  EXPECT_FALSE(Cache.lookup({2, 2}, markov::SolverKind::Exact, Hit));
  std::remove(Path.c_str());
}

TEST(CacheStore, VersionMismatchFailsLoudly) {
  std::string Path = tempPath("version");
  std::string Error;
  {
    auto Store = fdd::CacheStore::open(Path, &Error);
    ASSERT_TRUE(Store) << Error;
  }
  std::vector<uint8_t> Bytes = readFileBytes(Path);
  ASSERT_GE(Bytes.size(), 16u);
  Bytes[8] = 0x7f; // Bump the format version field.
  writeFileBytes(Path, Bytes);
  auto Store = fdd::CacheStore::open(Path, &Error);
  EXPECT_FALSE(Store);
  EXPECT_NE(Error.find("format version"), std::string::npos) << Error;
  // Not-a-store files are rejected too (no magic).
  writeFileBytes(Path, {'h', 'e', 'l', 'l', 'o', ' ', 'w', 'o', 'r', 'l',
                        'd', '!', '!', '!', '!', '!'});
  Store = fdd::CacheStore::open(Path, &Error);
  EXPECT_FALSE(Store);
  std::remove(Path.c_str());
}

TEST(CacheStore, MaybeCompactHonorsThresholds) {
  std::string Path = tempPath("maybe");
  fdd::PortableFdd Diagram = compileToPortable("sw:=1");
  fdd::CacheStore::Options Opts;
  Opts.CompactDeadRatio = 0.5;
  Opts.CompactMinRecords = 4;
  std::string Error;
  auto Store = fdd::CacheStore::open(Path, &Error, Opts);
  ASSERT_TRUE(Store) << Error;
  // 2 records, 1 dead: below the minimum record count, no compaction.
  ASSERT_TRUE(Store->append({1, 1}, markov::SolverKind::Exact, Diagram));
  ASSERT_TRUE(Store->append({1, 1}, markov::SolverKind::Exact, Diagram));
  ASSERT_TRUE(Store->maybeCompact(&Error)) << Error;
  EXPECT_EQ(Store->stats().Compactions, 0u);
  // 6 records, 5 dead: over both thresholds, compaction fires.
  for (int I = 0; I < 4; ++I)
    ASSERT_TRUE(Store->append({1, 1}, markov::SolverKind::Exact, Diagram));
  ASSERT_TRUE(Store->maybeCompact(&Error)) << Error;
  EXPECT_EQ(Store->stats().Compactions, 1u);
  EXPECT_EQ(Store->stats().DeadRecords, 0u);
  std::remove(Path.c_str());
}

//===----------------------------------------------------------------------===//
// JSON
//===----------------------------------------------------------------------===//

TEST(ServeJson, RoundTripsProtocolShapes) {
  serve::Json V;
  std::string Error;
  ASSERT_TRUE(serve::parseJson(
      "{\"verb\":\"query\",\"id\":7,\"inputs\":[{\"sw\":1},{\"sw\":2}],"
      "\"flag\":true,\"nothing\":null,\"tol\":0.5,\"s\":\"a\\\\b\\n\"}",
      V, &Error))
      << Error;
  ASSERT_TRUE(V.isObject());
  EXPECT_EQ(V.find("verb")->asString(), "query");
  EXPECT_EQ(V.find("id")->asInt(), 7);
  EXPECT_EQ(V.find("inputs")->elements().size(), 2u);
  EXPECT_TRUE(V.find("flag")->asBool());
  EXPECT_TRUE(V.find("nothing")->isNull());
  EXPECT_EQ(V.find("s")->asString(), "a\\b\n");
  // dump() -> parse() is the identity on protocol values.
  serve::Json Back;
  ASSERT_TRUE(serve::parseJson(V.dump(), Back, &Error)) << Error;
  EXPECT_EQ(Back.dump(), V.dump());
}

TEST(ServeJson, MalformedInputsFailCleanly) {
  const char *Bad[] = {
      "",          "{",         "[1,",        "{\"a\":}",  "tru",
      "\"unterm",  "{\"a\" 1}", "[1 2]",      "nul",       "{1:2}",
      "\"\\q\"",   "\"\\u12\"", "\"\\ud800\"", "01x",      "[]extra",
      "999999999999999999999999999",
  };
  for (const char *Text : Bad) {
    serve::Json V;
    std::string Error;
    EXPECT_FALSE(serve::parseJson(Text, V, &Error)) << Text;
    EXPECT_FALSE(Error.empty()) << Text;
  }
}

TEST(ServeJson, DeepNestingExhaustsACounterNotTheStack) {
  std::string Deep(100000, '[');
  serve::Json V;
  std::string Error;
  EXPECT_FALSE(serve::parseJson(Deep, V, &Error));
  EXPECT_NE(Error.find("nesting"), std::string::npos) << Error;
}

//===----------------------------------------------------------------------===//
// Session protocol
//===----------------------------------------------------------------------===//

/// Sends one request line and parses the response object.
serve::Json roundTrip(serve::Session &S, const std::string &Line,
                      bool *Shutdown = nullptr) {
  serve::Json Response;
  std::string Error;
  EXPECT_TRUE(serve::parseJson(S.handleLine(Line, Shutdown), Response,
                               &Error))
      << Error;
  return Response;
}

bool okOf(const serve::Json &R) {
  const serve::Json *Ok = R.find("ok");
  return Ok && Ok->isBool() && Ok->asBool();
}

TEST(Session, AnswersDeliveryQueriesExactly) {
  auto Svc = serve::Service::create({}, nullptr);
  ASSERT_TRUE(Svc);
  serve::Session S(*Svc);
  serve::Json R = roundTrip(
      S, "{\"verb\":\"query\",\"query\":\"delivery\",\"id\":3,"
         "\"program\":\"if sw=1 then (pt:=2 +[1/3] drop) else pt:=1\","
         "\"inputs\":[{\"sw\":1},{\"sw\":0}]}");
  ASSERT_TRUE(okOf(R)) << R.dump();
  EXPECT_EQ(R.find("id")->asInt(), 3);
  ASSERT_EQ(R.find("results")->elements().size(), 2u);
  EXPECT_EQ(R.find("results")->elements()[0].asString(), "1/3");
  EXPECT_EQ(R.find("results")->elements()[1].asString(), "1");
  EXPECT_EQ(R.find("average")->asString(), "2/3");
}

TEST(Session, ReusesTheCompiledProgramAcrossABatch) {
  auto Svc = serve::Service::create({}, nullptr);
  ASSERT_TRUE(Svc);
  serve::Session S(*Svc);
  std::string Compile = std::string("{\"verb\":\"compile\",\"program\":\"") +
                        BigProgram + "\"}";
  serve::Json First = roundTrip(S, Compile);
  ASSERT_TRUE(okOf(First)) << First.dump();
  EXPECT_FALSE(First.find("sessionCached")->asBool());
  serve::Json Second = roundTrip(S, Compile);
  ASSERT_TRUE(okOf(Second));
  EXPECT_TRUE(Second.find("sessionCached")->asBool());
}

TEST(Session, AnswersHopStatsAndComparisons) {
  auto Svc = serve::Service::create({}, nullptr);
  ASSERT_TRUE(Svc);
  serve::Session S(*Svc);
  serve::Json R = roundTrip(
      S, "{\"verb\":\"query\",\"query\":\"hop-stats\",\"hopField\":\"h\","
         "\"program\":\"if sw=1 then h:=1 else drop\","
         "\"inputs\":[{\"sw\":1},{\"sw\":2}]}");
  ASSERT_TRUE(okOf(R)) << R.dump();
  EXPECT_EQ(R.find("delivered")->asString(), "1/2");
  EXPECT_EQ(R.find("histogram")->find("1")->asString(), "1/2");

  serve::Json Eq = roundTrip(
      S, "{\"verb\":\"query\",\"query\":\"equivalent\","
         "\"program\":\"sw:=1 ; sw:=2\",\"program2\":\"sw:=2\"}");
  ASSERT_TRUE(okOf(Eq)) << Eq.dump();
  EXPECT_TRUE(Eq.find("holds")->asBool());
  serve::Json Ref = roundTrip(
      S, "{\"verb\":\"query\",\"query\":\"refines\","
         "\"program\":\"drop\",\"program2\":\"sw:=1\"}");
  ASSERT_TRUE(okOf(Ref)) << Ref.dump();
  EXPECT_TRUE(Ref.find("holds")->asBool());
}

TEST(Session, LintVerbReportsAndClearsFindings) {
  auto Svc = serve::Service::create({}, nullptr);
  ASSERT_TRUE(Svc);
  serve::Session S(*Svc);
  serve::Json R = roundTrip(
      S, "{\"verb\":\"lint\",\"program\":"
         "\"meter:=7; (if sw=1 then skip else drop)\"}");
  ASSERT_TRUE(okOf(R)) << R.dump();
  EXPECT_FALSE(R.find("clean")->asBool());
  const serve::Json *Fs = R.find("findings");
  ASSERT_NE(Fs, nullptr);
  ASSERT_FALSE(Fs->elements().empty());
  const serve::Json &First = Fs->elements()[0];
  EXPECT_EQ(First.find("check")->asString(), "write-only-field");
  EXPECT_EQ(First.find("line")->asInt(), 1);
  EXPECT_NE(First.find("message")->asString().find("meter"),
            std::string::npos);

  serve::Json Clean = roundTrip(
      S, "{\"verb\":\"lint\",\"program\":\"(if sw=1 then pt:=1 else pt:=2);"
         " (if pt=1 then skip else drop)\"}");
  ASSERT_TRUE(okOf(Clean)) << Clean.dump();
  EXPECT_TRUE(Clean.find("clean")->asBool());
  EXPECT_TRUE(Clean.find("findings")->elements().empty());
}

TEST(Session, SlicedQueriesMatchUnslicedAndCountInStats) {
  auto Svc = serve::Service::create({}, nullptr);
  ASSERT_TRUE(Svc);
  serve::Session S(*Svc);
  // The meter writes are invisible to delivery, so the sliced compile must
  // drop them yet answer with the same exact rationals.
  const char *Query = "\"verb\":\"query\",\"query\":\"delivery\","
                      "\"program\":\"meter:=7; (if sw=1 then (pt:=2 +[1/3] "
                      "drop) else meter:=1)\","
                      "\"inputs\":[{\"sw\":1},{\"sw\":0}]";
  serve::Json Plain = roundTrip(S, std::string("{") + Query + "}");
  ASSERT_TRUE(okOf(Plain)) << Plain.dump();
  serve::Json Sliced =
      roundTrip(S, std::string("{") + Query + ",\"slice\":true}");
  ASSERT_TRUE(okOf(Sliced)) << Sliced.dump();
  EXPECT_EQ(Sliced.find("results")->dump(), Plain.find("results")->dump());
  EXPECT_EQ(Sliced.find("average")->asString(),
            Plain.find("average")->asString());
  const serve::Json *Sl = Sliced.find("slice");
  ASSERT_NE(Sl, nullptr) << Sliced.dump();
  EXPECT_GE(Sl->find("assignmentsRemoved")->asInt(), 2);
  EXPECT_LT(Sl->find("nodesAfter")->asInt(),
            Sl->find("nodesBefore")->asInt());
  // Unsliced responses carry no slice report.
  EXPECT_EQ(Plain.find("slice"), nullptr);

  serve::Json Stats = roundTrip(S, "{\"verb\":\"stats\"}");
  ASSERT_TRUE(okOf(Stats)) << Stats.dump();
  const serve::Json *Agg = Stats.find("slice");
  ASSERT_NE(Agg, nullptr);
  EXPECT_EQ(Agg->find("requests")->asInt(), 1);
  EXPECT_GE(Agg->find("assignmentsRemoved")->asInt(), 2);
}

TEST(Session, RejectsBadRequestsWithoutDying) {
  auto Svc = serve::Service::create({}, nullptr);
  ASSERT_TRUE(Svc);
  serve::Session S(*Svc);
  const char *Bad[] = {
      "not json at all",
      "[1,2,3]",
      "{\"noVerb\":1}",
      "{\"verb\":\"frobnicate\"}",
      "{\"verb\":\"compile\"}",
      "{\"verb\":\"compile\",\"program\":\"sw:=\"}",
      "{\"verb\":\"compile\",\"program\":\"(sw:=1)*\"}",
      "{\"verb\":\"compile\",\"program\":\"sw:=1\",\"solver\":\"quantum\"}",
      "{\"verb\":\"query\",\"program\":\"sw:=1\",\"query\":\"delivery\"}",
      "{\"verb\":\"query\",\"program\":\"sw:=1\",\"query\":\"delivery\","
      "\"inputs\":[{\"nosuch\":1}]}",
      "{\"verb\":\"query\",\"program\":\"sw:=1\",\"query\":\"hop-stats\","
      "\"inputs\":[{\"sw\":1}],\"hopField\":\"missing\"}",
      "{\"verb\":\"query\",\"program\":\"sw:=1\",\"query\":\"nope\","
      "\"inputs\":[{\"sw\":1}]}",
  };
  for (const char *Line : Bad) {
    serve::Json R = roundTrip(S, Line);
    EXPECT_FALSE(okOf(R)) << Line << " -> " << R.dump();
    ASSERT_NE(R.find("error"), nullptr);
    EXPECT_FALSE(R.find("error")->asString().empty());
  }
  // The session is still healthy after the error barrage.
  serve::Json R = roundTrip(S, "{\"verb\":\"query\",\"query\":\"delivery\","
                               "\"program\":\"sw:=1\","
                               "\"inputs\":[{\"sw\":5}]}");
  EXPECT_TRUE(okOf(R)) << R.dump();
  EXPECT_EQ(Svc->errors(), sizeof(Bad) / sizeof(Bad[0]));
}

TEST(Session, StatsGcAndShutdownVerbsWork) {
  auto Svc = serve::Service::create({}, nullptr);
  ASSERT_TRUE(Svc);
  serve::Session S(*Svc);
  roundTrip(S, std::string("{\"verb\":\"compile\",\"program\":\"") +
                   BigProgram + "\"}");
  serve::Json Stats = roundTrip(S, "{\"verb\":\"stats\"}");
  ASSERT_TRUE(okOf(Stats)) << Stats.dump();
  ASSERT_NE(Stats.find("cache"), nullptr);
  EXPECT_GE(Stats.find("cache")->find("insertions")->asInt(), 1);
  serve::Json Gc = roundTrip(S, "{\"verb\":\"gc\"}");
  EXPECT_TRUE(okOf(Gc)) << Gc.dump();
  bool Shutdown = false;
  serve::Json Bye = roundTrip(S, "{\"verb\":\"shutdown\"}", &Shutdown);
  EXPECT_TRUE(okOf(Bye));
  EXPECT_TRUE(Shutdown);
}

TEST(Session, StdioLoopServesUntilShutdown) {
  auto Svc = serve::Service::create({}, nullptr);
  ASSERT_TRUE(Svc);
  std::istringstream In(
      "{\"verb\":\"parse\",\"program\":\"sw:=1 ; pt:=2\"}\n"
      "\n"
      "{\"verb\":\"shutdown\"}\n"
      "{\"verb\":\"stats\"}\n"); // After shutdown: must not be served.
  std::ostringstream Out;
  EXPECT_EQ(serve::runStdio(*Svc, In, Out), 2u);
  std::istringstream Lines(Out.str());
  std::string Line;
  ASSERT_TRUE(std::getline(Lines, Line));
  serve::Json R;
  std::string Error;
  ASSERT_TRUE(serve::parseJson(Line, R, &Error)) << Error;
  EXPECT_TRUE(okOf(R));
  EXPECT_EQ(R.find("nodes")->asInt(), 3);
  EXPECT_TRUE(R.find("guarded")->asBool());
}

//===----------------------------------------------------------------------===//
// Persistence through the Service (cold -> warm restart)
//===----------------------------------------------------------------------===//

TEST(Service, RestartAnswersFromTheDiskStore) {
  std::string Path = tempPath("service");
  std::string Query =
      std::string("{\"verb\":\"query\",\"query\":\"delivery\",\"program\":"
                  "\"") +
      BigProgram + "\",\"inputs\":[{\"sw\":1},{\"sw\":2}]}";
  std::string ColdDump, WarmDump;
  {
    serve::Service::Options Opts;
    Opts.StorePath = Path;
    std::string Error;
    auto Svc = serve::Service::create(Opts, &Error);
    ASSERT_TRUE(Svc) << Error;
    EXPECT_EQ(Svc->warmedEntries(), 0u);
    serve::Session S(*Svc);
    serve::Json R = roundTrip(S, Query);
    ASSERT_TRUE(okOf(R)) << R.dump();
    ColdDump = R.find("results")->dump();
    // The compile's cache misses were appended to disk by the observer.
    ASSERT_TRUE(Svc->store());
    EXPECT_GE(Svc->store()->stats().Appends, 1u);
  }
  {
    serve::Service::Options Opts;
    Opts.StorePath = Path;
    std::string Error;
    auto Svc = serve::Service::create(Opts, &Error);
    ASSERT_TRUE(Svc) << Error;
    // Restart is warm: the store loaded at least the top-level entry.
    EXPECT_GE(Svc->warmedEntries(), 1u);
    serve::Session S(*Svc);
    serve::Json R = roundTrip(S, Query);
    ASSERT_TRUE(okOf(R)) << R.dump();
    WarmDump = R.find("results")->dump();
    // The warm compile hit the cache instead of recompiling.
    EXPECT_GE(Svc->cache().stats().Hits, 1u);
    // Nothing new was appended: the entries were already on disk.
    EXPECT_EQ(Svc->store()->stats().Appends, 0u);
  }
  EXPECT_EQ(ColdDump, WarmDump);
  std::remove(Path.c_str());
}

//===----------------------------------------------------------------------===//
// Concurrent sessions (the TSan target)
//===----------------------------------------------------------------------===//

TEST(Service, ConcurrentSessionsShareOneCacheAndStore) {
  std::string Path = tempPath("concurrent");
  serve::Service::Options Opts;
  Opts.StorePath = Path;
  Opts.Threads = 1; // Sessions provide the concurrency here.
  std::string Error;
  auto Svc = serve::Service::create(Opts, &Error);
  ASSERT_TRUE(Svc) << Error;

  // Each thread runs its own session (sessions are single-owner; the
  // Service is the shared surface): same program family, so every thread
  // races on the same cache keys and the same store file.
  constexpr unsigned NumThreads = 8;
  constexpr unsigned Rounds = 6;
  std::atomic<unsigned> Failures{0};
  std::vector<std::thread> Threads;
  for (unsigned T = 0; T < NumThreads; ++T) {
    Threads.emplace_back([&Svc, &Failures] {
      serve::Session S(*Svc);
      for (unsigned I = 0; I < Rounds; ++I) {
        std::string Query =
            std::string("{\"verb\":\"query\",\"query\":\"delivery\","
                        "\"program\":\"") +
            BigProgram + "\",\"inputs\":[{\"sw\":1}]}";
        serve::Json R;
        std::string ParseError;
        if (!serve::parseJson(S.handleLine(Query), R, &ParseError) ||
            !okOf(R) ||
            R.find("results")->elements()[0].asString() != "1")
          ++Failures;
        if (!okOf(roundTrip(S, "{\"verb\":\"stats\"}")))
          ++Failures;
        if (!okOf(roundTrip(S, "{\"verb\":\"gc\"}")))
          ++Failures;
      }
    });
  }
  for (std::thread &T : Threads)
    T.join();
  EXPECT_EQ(Failures.load(), 0u);
  EXPECT_EQ(Svc->errors(), 0u);
  // Exactly-once persistence under racing sessions: every record on disk
  // is a distinct (fingerprint, solver) — duplicate inserts never reach
  // the observer, so the only dead records would come from recompiles,
  // of which there are none here.
  EXPECT_EQ(Svc->store()->stats().DeadRecords, 0u);
  std::remove(Path.c_str());
}

TEST(TcpServer, ServesLoopbackClients) {
  auto Svc = serve::Service::create({}, nullptr);
  ASSERT_TRUE(Svc);
  serve::TcpServer Server(*Svc);
  std::string Error;
  ASSERT_TRUE(Server.start(0, &Error)) << Error;
  ASSERT_NE(Server.port(), 0);
  // A tiny blocking client: connect, send two requests, read two lines.
  int Fd = ::socket(AF_INET, SOCK_STREAM, 0);
  ASSERT_GE(Fd, 0);
  sockaddr_in Addr{};
  Addr.sin_family = AF_INET;
  Addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  Addr.sin_port = htons(Server.port());
  ASSERT_EQ(::connect(Fd, reinterpret_cast<sockaddr *>(&Addr),
                      sizeof(Addr)),
            0);
  std::string Request =
      "{\"verb\":\"query\",\"query\":\"delivery\",\"program\":\"sw:=1\","
      "\"inputs\":[{\"sw\":3}]}\n{\"verb\":\"shutdown\"}\n";
  ASSERT_EQ(::write(Fd, Request.data(), Request.size()),
            static_cast<ssize_t>(Request.size()));
  std::string Received;
  char Chunk[4096];
  ssize_t N = 0;
  while ((N = ::read(Fd, Chunk, sizeof(Chunk))) > 0)
    Received.append(Chunk, static_cast<std::size_t>(N));
  ::close(Fd);
  Server.stop();
  // Two response lines, the first carrying the exact answer.
  std::istringstream Lines(Received);
  std::string First, Second;
  ASSERT_TRUE(std::getline(Lines, First));
  ASSERT_TRUE(std::getline(Lines, Second));
  serve::Json R;
  ASSERT_TRUE(serve::parseJson(First, R, &Error)) << Error;
  ASSERT_TRUE(okOf(R)) << R.dump();
  EXPECT_EQ(R.find("results")->elements()[0].asString(), "1");
}

} // namespace
