//===----------------------------------------------------------------------===//
///
/// \file
/// The cross-engine conformance suite (docs/ARCHITECTURE.md S11): seeded
/// random guarded programs and the full scenario registry are pushed
/// through every backend — native FDD under Exact/Direct/Iterative
/// solvers (serial and parallel), the prismlite pipeline, the exhaustive
/// baseline, and (for verdicts) the reference set semantics — with zero
/// tolerated disagreements. Also home of the subsystem's property tests:
/// the 500-program Printer -> Parser round-trip, portable-FDD
/// export/import round-trips (including cross-manager), LoopSolveStats
/// invariants on the registry's loop-bearing models, and registry
/// determinism.
///
/// Seeds print at the start of each randomized test; reproduce a failure
/// with MCNK_FUZZ_SEED. MCNK_FUZZ_ITERS scales the random-program sweep
/// (./ci.sh fuzz raises it for longer local runs).
///
//===----------------------------------------------------------------------===//

#include "analysis/Verifier.h"
#include "ast/Printer.h"
#include "ast/Traversal.h"
#include "fdd/CompileCache.h"
#include "fdd/Export.h"
#include "gen/Oracle.h"
#include "gen/ProgramGen.h"
#include "gen/Scenario.h"
#include "parser/Parser.h"
#include "routing/Routing.h"
#include "topology/Topology.h"

#include <gtest/gtest.h>

#include <cstdio>
#include <cstdlib>

using namespace mcnk;
using ast::Context;
using ast::Node;

namespace {

uint64_t envSeed(const char *Name, uint64_t Default) {
  const char *Value = std::getenv(Name);
  if (!Value || !*Value)
    return Default;
  return std::strtoull(Value, nullptr, 0);
}

unsigned envUnsigned(const char *Name, unsigned Default) {
  const char *Value = std::getenv(Name);
  if (!Value || !*Value)
    return Default;
  return static_cast<unsigned>(std::strtoul(Value, nullptr, 10));
}

void reportDisagreements(const gen::OracleReport &R) {
  for (const std::string &D : R.Disagreements)
    ADD_FAILURE() << D;
}

} // namespace

//===----------------------------------------------------------------------===//
// Differential conformance: random programs + scenario registry
//===----------------------------------------------------------------------===//

// Together these tests run well over 200 seeded scenario/program cases
// (default: 172 random programs + 44 verdict pairs across the four
// shards + the ~30-entry registry), each cross-checking all five
// engines and serial-vs-parallel compilation. Sharding exists purely so
// `ctest -j` can spread the sweep over cores; seeds stay decorrelated
// and reproducible per shard.

class RandomProgramShard : public ::testing::TestWithParam<unsigned> {};

TEST_P(RandomProgramShard, AllEnginesAgree) {
  unsigned Shard = GetParam();
  uint64_t Base = envSeed("MCNK_FUZZ_SEED", 0xA11CEULL);
  unsigned Total = envUnsigned("MCNK_FUZZ_ITERS", 172);
  uint64_t Seed = Prng(Base).deriveSeed(Shard);
  gen::FuzzOptions Fuzz;
  Fuzz.Iterations = (Total + 3) / 4;
  // The reproduction knob takes the BASE seed (each shard re-derives its
  // stream from it), so that is what the banner advertises.
  std::printf("[conformance] shard %u of base seed 0x%llx, %u iterations; "
              "reproduce with MCNK_FUZZ_SEED=0x%llx and this shard's "
              "--gtest_filter\n",
              Shard, static_cast<unsigned long long>(Base),
              Fuzz.Iterations, static_cast<unsigned long long>(Base));

  gen::OracleReport R = gen::fuzzPrograms(Seed, Fuzz, gen::OracleOptions());
  reportDisagreements(R);
  std::printf("[conformance] shard %u random programs: %s\n", Shard,
              R.summary().c_str());
  // Programs plus the every-fourth verdict pairs.
  EXPECT_GE(R.NumCases, Fuzz.Iterations + Fuzz.Iterations / 4);
  EXPECT_GE(R.NumChecks, 10u * Fuzz.Iterations);
}

INSTANTIATE_TEST_SUITE_P(Shards, RandomProgramShard,
                         ::testing::Values(0u, 1u, 2u, 3u));

TEST(ConformanceTest, ScenarioRegistryDifferential) {
  gen::OracleReport R =
      gen::runRegistry(gen::RegistryOptions(), gen::OracleOptions());
  reportDisagreements(R);
  std::printf("[conformance] scenario registry: %s\n", R.summary().c_str());
  EXPECT_GE(R.NumCases, 25u);
}

TEST(ConformanceTest, RegistryIsDeterministic) {
  std::vector<gen::ScenarioSpec> A = gen::buildRegistry();
  std::vector<gen::ScenarioSpec> B = gen::buildRegistry();
  ASSERT_EQ(A.size(), B.size());
  for (std::size_t I = 0; I < A.size(); ++I) {
    EXPECT_EQ(A[I].Name, B[I].Name);
    // Building the same spec twice in fresh contexts yields the same
    // program, byte for byte.
    Context CtxA, CtxB;
    gen::Scenario SA = A[I].Build(CtxA);
    gen::Scenario SB = B[I].Build(CtxB);
    EXPECT_EQ(ast::print(SA.Program, CtxA.fields()),
              ast::print(SB.Program, CtxB.fields()))
        << A[I].Name;
    EXPECT_EQ(SA.Inputs.size(), SB.Inputs.size());
  }
}

//===----------------------------------------------------------------------===//
// Cached sweep vs uncached engine on a long-lived verifier (S12)
//===----------------------------------------------------------------------===//

// One persistent cache-backed verifier survives 200 seeded programs plus
// the whole registry — the "long-lived serving" shape the compile cache
// and gc() exist for. Every compile must be reference-equal to a fresh
// uncached engine's diagram, the hit path must reproduce the cold ref,
// and periodic gc() of the shared manager must never change an answer.
TEST(ConformanceTest, CachedSweepMatchesUncachedOn200SeededCases) {
  uint64_t Seed = envSeed("MCNK_FUZZ_SEED", 0xCAC4EULL);
  std::printf("[conformance] cached-sweep seed 0x%llx\n",
              static_cast<unsigned long long>(Seed));
  Prng Master(Seed);
  gen::GenOptions G;

  fdd::CompileCache Shared;
  analysis::Verifier Cached(markov::SolverKind::Exact);
  Cached.setCompileCache(&Shared);

  std::size_t Cases = 0;
  auto CheckOne = [&](const ast::Node *Program, const std::string &Label) {
    ++Cases;
    fdd::FddRef Cold = Cached.compile(Program);
    ASSERT_EQ(Cached.compile(Program), Cold)
        << Label << ": hit path diverged from cold compile";
    analysis::Verifier Uncached(markov::SolverKind::Exact);
    fdd::FddRef Reference = Uncached.compile(Program);
    ASSERT_EQ(fdd::importFdd(Cached.manager(),
                             fdd::exportFdd(Uncached.manager(), Reference)),
              Cold)
        << Label << ": cached compile != uncached engine";
    // Periodically compact the long-lived manager down to the current
    // root; the surviving diagram must still be the canonical one.
    if (Cases % 25 == 0) {
      std::size_t Before = Cached.manager().numInnerNodes();
      fdd::GcStats GS = Cached.manager().gc({&Cold});
      EXPECT_LE(Cached.manager().numInnerNodes(), Before) << Label;
      EXPECT_EQ(GS.LiveInners, Cached.manager().numInnerNodes());
      ASSERT_EQ(
          fdd::importFdd(Cached.manager(),
                         fdd::exportFdd(Uncached.manager(), Reference)),
          Cold)
          << Label << ": gc changed the live root's identity";
    }
  };

  for (unsigned I = 0; I < 200; ++I) {
    Context Ctx;
    Prng Rng(Master.deriveSeed(I));
    const Node *Program = gen::generateProgram(Ctx, Rng, G);
    CheckOne(Program, "case " + std::to_string(I));
  }
  for (const gen::ScenarioSpec &Spec : gen::buildRegistry()) {
    Context Ctx;
    gen::Scenario S = Spec.Build(Ctx);
    CheckOne(S.Program, Spec.Name);
  }
  fdd::CompileCache::Stats S = Shared.stats();
  std::printf("[conformance] cached sweep: %zu cases, %llu hits / %llu "
              "misses, %zu entries\n",
              Cases, static_cast<unsigned long long>(S.Hits),
              static_cast<unsigned long long>(S.Misses), S.Entries);
  EXPECT_GE(Cases, 200u);
  EXPECT_GT(S.Hits, 0u);
}

//===----------------------------------------------------------------------===//
// Printer -> Parser round-trip on 500 seeded random programs
//===----------------------------------------------------------------------===//

TEST(ConformanceTest, PrinterParserRoundTrip500) {
  uint64_t Seed = envSeed("MCNK_FUZZ_SEED", 0x500ULL);
  std::printf("[conformance] round-trip seed 0x%llx\n",
              static_cast<unsigned long long>(Seed));
  Prng Master(Seed);
  gen::GenOptions G;
  G.MaxDepth = 5; // Syntax-only: deeper terms are free.
  for (unsigned I = 0; I < 500; ++I) {
    Context Ctx;
    Prng Rng(Master.deriveSeed(I));
    const Node *P = gen::generateProgram(Ctx, Rng, G);
    ASSERT_TRUE(ast::isGuarded(P)) << "generator left the guarded fragment";
    std::string Printed = ast::print(P, Ctx.fields());
    parser::ParseResult PR = parser::parseProgram(Printed, Ctx);
    ASSERT_TRUE(PR.ok()) << "iteration " << I << ": "
                         << PR.Diagnostics.front().render() << "\n"
                         << Printed;
    EXPECT_TRUE(ast::structurallyEqual(P, PR.Program))
        << "iteration " << I << " round-trip changed structure:\n"
        << Printed;
    EXPECT_TRUE(ast::isGuarded(PR.Program))
        << "round-trip left the guarded fragment";
  }
}

//===----------------------------------------------------------------------===//
// Portable-FDD round-trips on randomly generated diagrams
//===----------------------------------------------------------------------===//

TEST(ConformanceTest, PortableFddRoundTripRandomDiagrams) {
  uint64_t Seed = envSeed("MCNK_FUZZ_SEED", 0xF00DULL);
  Prng Master(Seed);
  gen::GenOptions G;
  for (unsigned I = 0; I < 60; ++I) {
    Context Ctx;
    Prng Rng(Master.deriveSeed(I));
    const Node *P = gen::generateProgram(Ctx, Rng, G);
    analysis::Verifier V;
    fdd::FddRef Ref = V.compile(P);

    // Same-manager: import must dedup onto the existing nodes.
    fdd::PortableFdd Portable = fdd::exportFdd(V.manager(), Ref);
    EXPECT_EQ(fdd::importFdd(V.manager(), Portable), Ref);

    // Cross-manager: a fresh manager re-canonicalizes (hash-consing from
    // scratch); importing twice must intern to the same reference, and
    // shipping the re-export back must land on the original.
    fdd::FddManager Fresh(markov::SolverKind::Exact);
    fdd::FddRef First = fdd::importFdd(Fresh, Portable);
    fdd::FddRef Second = fdd::importFdd(Fresh, Portable);
    EXPECT_EQ(First, Second) << "re-import is not reference-stable";
    fdd::PortableFdd Reexported = fdd::exportFdd(Fresh, First);
    EXPECT_EQ(fdd::importFdd(V.manager(), Reexported), Ref)
        << "cross-manager round-trip lost canonicity (iteration " << I
        << ")";

    // A manager whose pools already hold unrelated diagrams must dedup
    // imports against them the same way.
    analysis::Verifier Busy;
    Context CtxB;
    Prng RngB(Master.deriveSeed(0x20000 + I));
    Busy.compile(gen::generateProgram(CtxB, RngB, G));
    fdd::FddRef Imported = fdd::importFdd(Busy.manager(), Portable);
    fdd::FddRef Again = fdd::importFdd(Busy.manager(), Portable);
    EXPECT_EQ(Imported, Again);
  }
}

//===----------------------------------------------------------------------===//
// LoopSolveStats invariants
//===----------------------------------------------------------------------===//

// The generic invariants (NumTransient <= NumStates, dense-Q bound,
// positive delivery implies an absorbing class, ...) are asserted on
// every loop-bearing registry scenario by the oracle itself — see the
// LoopBearing block in gen/Oracle.cpp, exercised above by
// ScenarioRegistryDifferential. Here we pin the *exact* class counts on
// the one model small enough to predict by hand.

TEST(ConformanceTest, LoopSolveStatsChainClassCounts) {
  // The chain model's loop chain is small enough to predict exactly: the
  // only state field is sw (the sampled up flag is resolved by sequential
  // composition and re-canonicalized, leaving an output-only decoration).
  // Symbolic sw values: 4K switches + the Delivered sentinel + wildcard.
  // Transient = everything but sw=Delivered; one absorbing class; Q holds
  // split->upper, split->lower, upper->join, lower->join per diamond plus
  // the K-1 inner join->split hops.
  for (unsigned K = 1; K <= 3; ++K) {
    Context Ctx;
    topology::ChainLayout L;
    topology::makeChain(K, L);
    routing::NetworkModel M =
        routing::buildChainModel(L, Rational(1, 10), Ctx);
    analysis::Verifier V;
    V.compile(M.Program);
    const fdd::LoopSolveStats &LS = V.manager().lastLoopStats();
    EXPECT_EQ(LS.NumStates, 4 * K + 2u) << "K=" << K;
    EXPECT_EQ(LS.NumTransient, 4 * K + 1u) << "K=" << K;
    EXPECT_EQ(LS.NumAbsorbing, 1u) << "K=" << K;
    EXPECT_EQ(LS.NumQEntries, 5 * K - 1u) << "K=" << K;
  }
}

TEST(ConformanceTest, BlockedChainStatsSumToMonolithic) {
  // The chain model's transient graph is acyclic (packets only move
  // forward), so after pruning the unreachable wildcard class every kept
  // state is its own strongly connected class: the blocked solver must
  // report 4K singleton blocks whose per-block counts sum exactly to the
  // monolithic totals, while solving the identical system (NumSolved,
  // NumSolvedQ, and the compiled diagram itself all match).
  for (unsigned K = 1; K <= 3; ++K) {
    Context Ctx;
    topology::ChainLayout L;
    topology::makeChain(K, L);
    routing::NetworkModel M =
        routing::buildChainModel(L, Rational(1, 10), Ctx);

    analysis::Verifier Mono;
    fdd::FddRef PM = Mono.compile(M.Program);
    fdd::LoopSolveStats MS = Mono.manager().lastLoopStats();

    analysis::Verifier V;
    markov::SolverStructure S;
    S.Blocked = true;
    S.Ordering = linalg::OrderingKind::ReverseCuthillMcKee;
    V.setSolverStructure(S);
    fdd::FddRef PB = V.compile(M.Program);
    const fdd::LoopSolveStats &LS = V.manager().lastLoopStats();

    // Same solved system as the monolithic engine: the wildcard class is
    // pruned (4K states kept of 4K+1 transient), every kept Q entry
    // survives, and the exact diagrams are reference-equal.
    EXPECT_EQ(LS.NumSolved, 4 * K) << "K=" << K;
    EXPECT_EQ(LS.NumSolvedQ, 5 * K - 1u) << "K=" << K;
    EXPECT_EQ(MS.NumSolved, LS.NumSolved) << "K=" << K;
    EXPECT_EQ(MS.NumSolvedQ, LS.NumSolvedQ) << "K=" << K;
    EXPECT_EQ(fdd::importFdd(V.manager(),
                             fdd::exportFdd(Mono.manager(), PM)),
              PB)
        << "K=" << K;

    // ...decomposed into singleton classes, versus one monolithic block.
    EXPECT_EQ(LS.NumBlocks, 4 * K) << "K=" << K;
    EXPECT_EQ(LS.MaxBlockSize, 1u) << "K=" << K;
    EXPECT_EQ(MS.NumBlocks, 1u) << "K=" << K;
    EXPECT_EQ(MS.MaxBlockSize, 4 * K) << "K=" << K;
    ASSERT_EQ(MS.Blocks.size(), 1u) << "K=" << K;
    EXPECT_EQ(MS.Blocks[0].NumQEntries, MS.NumSolvedQ) << "K=" << K;

    // Per-block counts sum to the blocked totals.
    ASSERT_EQ(LS.Blocks.size(), LS.NumBlocks) << "K=" << K;
    std::size_t States = 0, QEntries = 0, Ops = 0, Fill = 0;
    for (const markov::BlockMetrics &B : LS.Blocks) {
      EXPECT_EQ(B.NumStates, 1u) << "K=" << K;
      States += B.NumStates;
      QEntries += B.NumQEntries;
      Ops += B.EliminationOps;
      Fill += B.FillIn;
    }
    EXPECT_EQ(States, LS.NumSolved) << "K=" << K;
    EXPECT_EQ(QEntries, LS.NumSolvedQ) << "K=" << K;
    EXPECT_EQ(Ops, LS.EliminationOps) << "K=" << K;
    EXPECT_EQ(Fill, LS.FillIn) << "K=" << K;
    // Singleton blocks never create fill-in, and never do more work than
    // the monolithic elimination.
    EXPECT_EQ(LS.FillIn, 0u) << "K=" << K;
    EXPECT_LE(LS.EliminationOps, MS.EliminationOps) << "K=" << K;
  }
}
