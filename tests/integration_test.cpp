//===----------------------------------------------------------------------===//
///
/// \file
/// Cross-cutting integration tests:
///  - four-way agreement on randomized guarded programs between the native
///    FDD backend, the reference set semantics, the PRISM pipeline, and
///    the exhaustive baseline;
///  - the Fig 5 pipeline demonstration (program -> FDD -> stochastic
///    matrix) with row-stochasticity and pointwise agreement checks;
///  - waypointing via instrumentation (§3: "recording whether a packet
///    traversed a given switch allows reasoning about simple waypointing");
///  - the `dup` diagnostic (history-free fragment, §3).
///
//===----------------------------------------------------------------------===//

#include "analysis/Verifier.h"
#include "baseline/Exhaustive.h"
#include "fdd/MatrixConv.h"
#include "parser/Parser.h"
#include "prism/Checker.h"
#include "prism/Translate.h"
#include "routing/Routing.h"
#include "semantics/SetSemantics.h"

#include <gtest/gtest.h>

#include <random>

using namespace mcnk;
using ast::Context;
using ast::Node;

//===----------------------------------------------------------------------===//
// Four-way agreement
//===----------------------------------------------------------------------===//

namespace {

const Node *randomGuarded(Context &Ctx, FieldId A, FieldId B,
                          std::mt19937_64 &Rng, unsigned Depth) {
  auto Value = [&] {
    return std::uniform_int_distribution<FieldValue>(0, 1)(Rng);
  };
  auto Field = [&] {
    return std::uniform_int_distribution<int>(0, 1)(Rng) ? A : B;
  };
  std::uniform_int_distribution<int> Pick(0, Depth == 0 ? 2 : 7);
  switch (Pick(Rng)) {
  case 0:
    return Ctx.assign(Field(), Value());
  case 1:
    return Ctx.test(Field(), Value());
  case 2:
    return Ctx.skip();
  case 3:
    return Ctx.seq(randomGuarded(Ctx, A, B, Rng, Depth - 1),
                   randomGuarded(Ctx, A, B, Rng, Depth - 1));
  case 4:
    return Ctx.choice(
        Rational(std::uniform_int_distribution<int>(1, 3)(Rng), 4),
        randomGuarded(Ctx, A, B, Rng, Depth - 1),
        randomGuarded(Ctx, A, B, Rng, Depth - 1));
  case 5:
    return Ctx.ite(Ctx.test(Field(), Value()),
                   randomGuarded(Ctx, A, B, Rng, Depth - 1),
                   randomGuarded(Ctx, A, B, Rng, Depth - 1));
  case 6:
    return Ctx.whileLoop(Ctx.test(Field(), Value()),
                         randomGuarded(Ctx, A, B, Rng, Depth - 1));
  default:
    return Ctx.drop();
  }
}

} // namespace

class FourWayAgreement : public ::testing::TestWithParam<unsigned> {};

TEST_P(FourWayAgreement, AllBackendsAgreeOnDelivery) {
  Context Ctx;
  FieldId A = Ctx.field("a"), B = Ctx.field("b");
  std::mt19937_64 Rng(GetParam());
  analysis::Verifier V;
  semantics::SetSemantics Sem(Ctx, PacketDomain({2, 2}));

  for (int Round = 0; Round < 10; ++Round) {
    const Node *P = randomGuarded(Ctx, A, B, Rng, 3);
    fdd::FddRef Native = V.compile(P);

    for (FieldValue VA = 0; VA <= 1; ++VA)
      for (FieldValue VB = 0; VB <= 1; ++VB) {
        Packet In(2);
        In.set(A, VA);
        In.set(B, VB);

        // 1. Native FDD backend.
        Rational NativeDelivery = V.deliveryProbability(Native, In);

        // 2. Reference set semantics: mass not mapped to ∅.
        Rational RefDelivery;
        for (const auto &[Set, W] : Sem.eval(P, Sem.singleton(In)))
          if (Set != 0)
            RefDelivery += W;
        EXPECT_EQ(NativeDelivery, RefDelivery) << "native vs reference";

        // 3. PRISM pipeline (exact).
        prism::Translation T = prism::translate(Ctx, P, In);
        prism::Model PM;
        prism::GuardExpr Goal;
        std::string Error;
        ASSERT_TRUE(prism::parseModel(T.Source, PM, Error)) << Error;
        ASSERT_TRUE(prism::parseGuard(T.DoneGuard, PM, Goal, Error));
        prism::CheckResult CR;
        ASSERT_TRUE(prism::checkReachability(
            PM, Goal, markov::SolverKind::Exact, CR, Error))
            << Error;
        EXPECT_EQ(CR.Probability, NativeDelivery) << "prism vs native";

        // 4. Exhaustive baseline (up to unrolling residual). Nested loops
        // can make exhaustive unrolling combinatorial, so a path budget
        // bounds the attempt; comparisons only apply to complete runs.
        baseline::InferenceOptions BO;
        BO.LoopBound = 24;
        BO.PathBudget = 200000;
        baseline::InferenceResult BR = baseline::infer(P, In, BO);
        if (!BR.BudgetExhausted) {
          Rational Gap = NativeDelivery - BR.deliveredMass();
          EXPECT_TRUE(!Gap.isNegative() && Gap <= BR.Residual)
              << "baseline vs native beyond residual";
        }
      }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, FourWayAgreement,
                         ::testing::Values(51u, 52u, 53u, 54u));

//===----------------------------------------------------------------------===//
// Fig 5 pipeline: program -> FDD -> stochastic matrix
//===----------------------------------------------------------------------===//

TEST(MatrixConversionTest, Figure5Example) {
  // The exact program of Fig 5: a port-uniform split at pt=1, returns to
  // pt=1 from pt=2/3, drop otherwise.
  Context Ctx;
  FieldId Pt = Ctx.field("pt");
  auto Parse = [&](const char *Text) {
    auto R = parser::parseProgram(Text, Ctx);
    EXPECT_TRUE(R.ok());
    return R.Program;
  };
  const Node *P = Parse("if pt=1 then (pt:=2 +[0.5] pt:=3) else "
                        "if pt=2 then pt:=1 else "
                        "if pt=3 then pt:=1 else drop");
  analysis::Verifier V;
  fdd::FddRef Ref = V.compile(P);
  fdd::StochasticMatrix M = fdd::toMatrix(V.manager(), Ref);

  // Symbolic packets: pt ∈ {1, 2, 3, *} — exactly Fig 5's state space.
  ASSERT_EQ(M.Fields.size(), 1u);
  EXPECT_EQ(M.Fields[0], Pt);
  EXPECT_EQ(M.NumStates, 4u);

  // Row for pt=1 splits 1/2 to pt=2 and pt=3; pt=2/pt=3 go to pt=1;
  // pt=* drops.
  Packet P1(1), P2(1), P3(1), PStar(1);
  P1.set(Pt, 1);
  P2.set(Pt, 2);
  P3.set(Pt, 3);
  PStar.set(Pt, 99);
  auto MassOf = [&](const Packet &From, const Packet &To) {
    Rational Total;
    for (const auto &E : M.Entries)
      if (E.Row == M.stateOf(From) && E.Col == M.stateOf(To))
        Total += E.Value;
    return Total;
  };
  EXPECT_EQ(MassOf(P1, P2), Rational(1, 2));
  EXPECT_EQ(MassOf(P1, P3), Rational(1, 2));
  EXPECT_EQ(MassOf(P2, P1), Rational(1));
  EXPECT_EQ(MassOf(P3, P1), Rational(1));
  EXPECT_EQ(M.DropMass[M.stateOf(PStar)], Rational(1));
  EXPECT_EQ(M.renderState(M.stateOf(PStar), Ctx.fields()), "pt=*");

  // Rows are stochastic including the drop column.
  std::vector<Rational> RowSums(M.NumStates);
  for (const auto &E : M.Entries)
    RowSums[E.Row] += E.Value;
  for (std::size_t R = 0; R < M.NumStates; ++R)
    EXPECT_EQ(RowSums[R] + M.DropMass[R], Rational(1)) << "row " << R;
}

TEST(MatrixConversionTest, AgreesWithOutputDistribution) {
  Context Ctx;
  FieldId A = Ctx.field("a"), B = Ctx.field("b");
  std::mt19937_64 Rng(77);
  analysis::Verifier V;
  for (int Round = 0; Round < 10; ++Round) {
    const Node *P = randomGuarded(Ctx, A, B, Rng, 3);
    fdd::FddRef Ref = V.compile(P);
    fdd::StochasticMatrix M = fdd::toMatrix(V.manager(), Ref);
    for (FieldValue VA = 0; VA <= 1; ++VA) {
      Packet In(2);
      In.set(A, VA);
      In.set(B, 1);
      auto Out = V.manager().outputDistribution(Ref, In);
      // The matrix row for In's symbolic class must give the same drop
      // mass and the same per-output mass.
      std::size_t Row = M.stateOf(In);
      EXPECT_EQ(M.DropMass[Row], Out.Dropped);
      Rational RowSum;
      for (const auto &E : M.Entries)
        if (E.Row == Row)
          RowSum += E.Value;
      Rational OutSum;
      for (const auto &[Pkt, W] : Out.Outputs)
        OutSum += W;
      EXPECT_EQ(RowSum, OutSum);
    }
  }
}

//===----------------------------------------------------------------------===//
// Waypointing via instrumentation (§3)
//===----------------------------------------------------------------------===//

TEST(WaypointTest, DetourTrafficTraversesSwitchThree) {
  // Instrument the §2 resilient model with a local `via3` flag set at
  // switch 3. Under f2, the probability that a delivered packet went
  // through switch 3 is exactly the detour probability.
  Context Ctx;
  FieldId Sw = Ctx.field("sw");
  FieldId Pt = Ctx.field("pt");
  FieldId Up2 = Ctx.field("up2");
  FieldId Up3 = Ctx.field("up3");
  FieldId Via3 = Ctx.field("via3");

  // A compact hand-rolled M̂(p̂, t̂, f2) with the waypoint recorder fused
  // into the policy.
  const Node *Mark = Ctx.ite(Ctx.test(Sw, 3), Ctx.assign(Via3, 1),
                             Ctx.skip());
  const Node *PHat = Ctx.seq(
      Mark,
      Ctx.ite(Ctx.test(Sw, 1),
              Ctx.ite(Ctx.test(Up2, 1), Ctx.assign(Pt, 2),
                      Ctx.assign(Pt, 3)),
              Ctx.assign(Pt, 2)));
  const Node *F2 = Ctx.seq(
      Ctx.choice(Rational(4, 5), Ctx.assign(Up2, 1), Ctx.assign(Up2, 0)),
      Ctx.choice(Rational(4, 5), Ctx.assign(Up3, 1), Ctx.assign(Up3, 0)));
  std::vector<ast::CaseNode::Branch> Links = {
      {Ctx.seq(Ctx.seq(Ctx.test(Sw, 1), Ctx.test(Pt, 2)),
               Ctx.test(Up2, 1)),
       Ctx.seq(Ctx.assign(Sw, 2), Ctx.assign(Pt, 1))},
      {Ctx.seq(Ctx.seq(Ctx.test(Sw, 1), Ctx.test(Pt, 3)),
               Ctx.test(Up3, 1)),
       Ctx.seq(Ctx.assign(Sw, 3), Ctx.assign(Pt, 1))},
      {Ctx.seq(Ctx.test(Sw, 3), Ctx.test(Pt, 2)),
       Ctx.seq(Ctx.assign(Sw, 2), Ctx.assign(Pt, 3))},
  };
  const Node *THat = Ctx.caseOf(std::move(Links), Ctx.drop());
  const Node *In = Ctx.seq(Ctx.test(Sw, 1), Ctx.test(Pt, 1));
  const Node *Out = Ctx.seq(Ctx.test(Sw, 2), Ctx.test(Pt, 2));
  const Node *Q = Ctx.seq(F2, PHat);
  const Node *Model = Ctx.seqAll(
      {In, Ctx.assign(Via3, 0), Q,
       Ctx.whileLoop(Ctx.negate(Out), Ctx.seq(THat, Q))});
  Model = Ctx.local(Up2, 1, Ctx.local(Up3, 1, Model));

  analysis::Verifier V;
  fdd::FddRef Ref = V.compile(Model);
  Packet Ingress(Ctx.fields().numFields());
  Ingress.set(Sw, 1);
  Ingress.set(Pt, 1);
  auto Dist = V.outputFieldDistribution(Ref, Ingress, Via3);
  // Direct path (up2 alive): 4/5 — never sees switch 3. Detour: up2 down
  // (1/5) and up3 alive (4/5) = 4/25 through switch 3.
  EXPECT_EQ(Dist[0], Rational(4, 5));
  EXPECT_EQ(Dist[1], Rational(4, 25));
}

//===----------------------------------------------------------------------===//
// dup rejection
//===----------------------------------------------------------------------===//

TEST(HistoryFreeTest, DupIsRejectedWithDiagnostic) {
  Context Ctx;
  auto Result = parser::parseProgram("sw=1 ; dup ; pt:=2", Ctx);
  ASSERT_FALSE(Result.ok());
  EXPECT_NE(Result.Diagnostics[0].Message.find("history-free"),
            std::string::npos);
}
