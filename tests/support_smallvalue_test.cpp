//===----------------------------------------------------------------------===//
///
/// \file
/// Property tests for the small-value fast paths of BigInt and Rational
/// (docs/ARCHITECTURE.md S9). Randomized operands cross-check three
/// implementations of every operation: the int64 fast path, the
/// limb-vector slow path (reached by constructing the same values through
/// multi-word arithmetic or by overflowing the fast path), and native
/// __int128 where the result is representable. Includes the boundary
/// values around INT64_MIN/MAX where the representations hand over, and
/// verifies the canonicality invariant (inline iff the value fits int64)
/// that equality comparison relies on.
///
//===----------------------------------------------------------------------===//

#include "support/BigInt.h"
#include "support/Rational.h"

#include <gtest/gtest.h>

#include <cstdint>
#include <random>
#include <vector>

using mcnk::BigInt;
using mcnk::Rational;

namespace {

/// Builds a BigInt from __int128 through the public limb-path API (shl over
/// the 63-bit boundary forces multi-word arithmetic), independent of the
/// int64 constructor fast path.
BigInt fromI128(__int128 Value) {
  bool Neg = Value < 0;
  unsigned __int128 Mag =
      Neg ? ~static_cast<unsigned __int128>(Value) + 1
          : static_cast<unsigned __int128>(Value);
  BigInt Low = BigInt::fromUnsigned(static_cast<uint64_t>(Mag));
  BigInt High = BigInt::fromUnsigned(static_cast<uint64_t>(Mag >> 64));
  BigInt Result = High.shl(64) + Low;
  return Neg ? -Result : Result;
}

/// Checks the canonicality invariant: a value is inline iff it lies in
/// the int64 range (decided here via compare, not via the representation).
void expectCanonical(const BigInt &Value) {
  bool InRange = Value.compare(BigInt(INT64_MAX)) <= 0 &&
                 Value.compare(BigInt(INT64_MIN)) >= 0;
  EXPECT_EQ(Value.isSmallRep(), InRange) << Value.toString();
}

/// Word-boundary values where the small/limb handover happens.
const std::vector<int64_t> Boundary = {
    0,
    1,
    -1,
    2,
    -2,
    3,
    1000,
    -1000,
    (1LL << 31) - 1,
    1LL << 31,
    (1LL << 32) + 1,
    -(1LL << 32),
    (1LL << 52) + 12345,
    (1LL << 62) - 1,
    1LL << 62,
    -(1LL << 62),
    INT64_MAX - 1,
    INT64_MAX,
    INT64_MIN + 1,
    INT64_MIN,
};

/// Random int64 with a uniformly random bit width (exercises both the
/// always-small and the overflow-prone ranges).
int64_t randomInt64(std::mt19937_64 &Rng) {
  uint64_t Raw = Rng();
  unsigned Shift = static_cast<unsigned>(Rng() % 64);
  int64_t Value = static_cast<int64_t>(Raw >> Shift);
  return (Rng() & 1) ? Value : -Value;
}

} // namespace

//===----------------------------------------------------------------------===//
// BigInt: fast path vs limb path vs __int128
//===----------------------------------------------------------------------===//

class SmallValueBigIntProperty : public ::testing::TestWithParam<unsigned> {};

TEST_P(SmallValueBigIntProperty, FastPathMatchesInt128AndLimbPath) {
  std::mt19937_64 Rng(GetParam());
  const int GridRounds = static_cast<int>(Boundary.size() * Boundary.size());
  for (int Round = 0; Round < GridRounds + 200; ++Round) {
    int64_t AV = Round < GridRounds ? Boundary[Round / Boundary.size()]
                                    : randomInt64(Rng);
    int64_t BV = Round < GridRounds ? Boundary[Round % Boundary.size()]
                                    : randomInt64(Rng);
    BigInt A(AV), B(BV);
    __int128 A128 = AV, B128 = BV;

    // The limb path reaches the same results: rebuild both operands through
    // multi-word construction and compare every operation.
    BigInt Sum = A + B, Diff = A - B, Prod = A * B;
    EXPECT_EQ(Sum, fromI128(A128 + B128));
    EXPECT_EQ(Diff, fromI128(A128 - B128));
    EXPECT_EQ(Prod, fromI128(A128 * B128));
    expectCanonical(Sum);
    expectCanonical(Diff);
    expectCanonical(Prod);

    // In-place operators agree with their out-of-place counterparts.
    BigInt C = A;
    C += B;
    EXPECT_EQ(C, Sum);
    C = A;
    C -= B;
    EXPECT_EQ(C, Diff);
    C = A;
    C *= B;
    EXPECT_EQ(C, Prod);

    if (BV != 0) {
      auto [Q, R] = BigInt::divMod(A, B);
      EXPECT_EQ(Q, fromI128(A128 / B128));
      EXPECT_EQ(R, fromI128(A128 % B128));
      expectCanonical(Q);
      expectCanonical(R);
      C = A;
      C /= B;
      EXPECT_EQ(C, Q);
    }

    EXPECT_EQ(A.compare(B), AV < BV ? -1 : (AV > BV ? 1 : 0));
    if (AV == BV) {
      EXPECT_EQ(A.hash(), B.hash());
    }
  }
}

TEST_P(SmallValueBigIntProperty, MixedRepresentationOps) {
  std::mt19937_64 Rng(GetParam());
  for (int Round = 0; Round < 200; ++Round) {
    // A big (out-of-int64) value against a small one.
    int64_t WideV = randomInt64(Rng);
    int64_t SmallV = randomInt64(Rng);
    __int128 Big128 = (static_cast<__int128>(WideV) << 17) +
                      static_cast<__int128>(1) * (Rng() & 0xffff);
    if (Big128 >= INT64_MIN && Big128 <= INT64_MAX)
      Big128 += (static_cast<__int128>(1) << 70);
    BigInt Big = fromI128(Big128);
    ASSERT_FALSE(Big.isSmallRep());
    BigInt Small(SmallV);

    EXPECT_EQ(Big + Small, fromI128(Big128 + SmallV));
    EXPECT_EQ(Small + Big, fromI128(Big128 + SmallV));
    EXPECT_EQ(Big - Small, fromI128(Big128 - SmallV));
    EXPECT_EQ(Small - Big, fromI128(static_cast<__int128>(SmallV) - Big128));
    // Keep the multiplication oracle inside __int128 range: |Big128| < 2^81,
    // so a factor below 2^40 cannot overflow the 128-bit reference.
    int64_t MulV = SmallV % (1LL << 40);
    EXPECT_EQ(Big * BigInt(MulV), fromI128(Big128 * MulV));
    if (SmallV != 0) {
      EXPECT_EQ(Big / Small, fromI128(Big128 / SmallV));
      EXPECT_EQ(Big % Small, fromI128(Big128 % SmallV));
    }
    EXPECT_EQ(Small.compare(Big), Big128 > 0 ? -1 : 1);

    // In-place accumulation across the representation boundary.
    BigInt Acc = Small;
    Acc += Big;
    EXPECT_EQ(Acc, fromI128(Big128 + SmallV));
    Acc -= Big;
    EXPECT_EQ(Acc, Small);
    expectCanonical(Acc);

    // Demotion: subtracting a big value from itself lands back inline.
    BigInt Zero = Big;
    Zero -= Big;
    EXPECT_TRUE(Zero.isZero());
    EXPECT_TRUE(Zero.isSmallRep());

    // Aliased self-accumulation.
    BigInt Doubled = Big;
    Doubled += Doubled;
    EXPECT_EQ(Doubled, fromI128(Big128 * 2));
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, SmallValueBigIntProperty,
                         ::testing::Values(11u, 12u, 13u, 14u));

TEST(SmallValueBigIntTest, BoundaryPromotionAndDemotion) {
  // INT64_MAX + 1 promotes; subtracting 1 demotes back.
  BigInt Max(INT64_MAX);
  BigInt Promoted = Max + BigInt(1);
  EXPECT_FALSE(Promoted.isSmallRep());
  EXPECT_EQ(Promoted.toString(), "9223372036854775808");
  BigInt Back = Promoted - BigInt(1);
  EXPECT_TRUE(Back.isSmallRep());
  EXPECT_EQ(Back, Max);

  // INT64_MIN is inline; negating it promotes (2^63 > INT64_MAX);
  // negating again demotes.
  BigInt Min(INT64_MIN);
  EXPECT_TRUE(Min.isSmallRep());
  BigInt NegMin = -Min;
  EXPECT_FALSE(NegMin.isSmallRep());
  EXPECT_EQ(-NegMin, Min);
  EXPECT_TRUE((-NegMin).isSmallRep());

  // INT64_MIN / -1 overflows int64 and must promote.
  BigInt Quot = Min / BigInt(-1);
  EXPECT_FALSE(Quot.isSmallRep());
  EXPECT_EQ(Quot, NegMin);

  // INT64_MIN * -1 likewise.
  EXPECT_EQ(Min * BigInt(-1), NegMin);

  // abs(INT64_MIN) promotes.
  EXPECT_EQ(Min.abs(), NegMin);

  // gcd with INT64_MIN magnitudes (2^63 is not an int64).
  EXPECT_EQ(BigInt::gcd(Min, BigInt(0)), NegMin);
  EXPECT_EQ(BigInt::gcd(Min, Min), NegMin);
  EXPECT_EQ(BigInt::gcd(Min, BigInt(3)), BigInt(1));

  // Shifts across the inline boundary round-trip.
  for (int64_t V : Boundary) {
    BigInt Value(V);
    for (unsigned Bits : {1u, 13u, 32u, 63u, 64u, 100u}) {
      BigInt Shifted = Value.shl(Bits);
      expectCanonical(Shifted);
      EXPECT_EQ(Shifted.shr(Bits), Value) << V << " << " << Bits;
    }
  }
}

TEST(SmallValueBigIntTest, InPlaceLimbAccumulationMatchesRebuild) {
  // Long alternating accumulation that repeatedly crosses the boundary;
  // in-place += / -= must track the rebuild-from-scratch result exactly.
  std::mt19937_64 Rng(99);
  BigInt InPlace(0);
  BigInt Reference(0);
  for (int Round = 0; Round < 500; ++Round) {
    int64_t V = randomInt64(Rng);
    BigInt Term = BigInt(V) * BigInt(V) * BigInt(Round % 7 - 3);
    InPlace += Term;
    Reference = Reference + Term;
    ASSERT_EQ(InPlace, Reference);
    expectCanonical(InPlace);
    if (Round % 5 == 0) {
      InPlace -= Reference;
      EXPECT_TRUE(InPlace.isZero());
      InPlace += Reference;
    }
  }
}

TEST(SmallValueBigIntTest, PowOverflowGuardAborts) {
  EXPECT_DEATH(BigInt::pow(BigInt(2), 1u << 30), "pow");
}

//===----------------------------------------------------------------------===//
// Rational: int64 fast path vs BigInt formula
//===----------------------------------------------------------------------===//

namespace {

/// Reference implementations through the BigInt constructor path (textbook
/// cross-multiplication + gcd normalization), independent of the fused
/// int64 fast paths.
Rational refAdd(const Rational &A, const Rational &B) {
  return Rational(A.numerator() * B.denominator() +
                      B.numerator() * A.denominator(),
                  A.denominator() * B.denominator());
}
Rational refSub(const Rational &A, const Rational &B) {
  return Rational(A.numerator() * B.denominator() -
                      B.numerator() * A.denominator(),
                  A.denominator() * B.denominator());
}
Rational refMul(const Rational &A, const Rational &B) {
  return Rational(A.numerator() * B.numerator(),
                  A.denominator() * B.denominator());
}
Rational refDiv(const Rational &A, const Rational &B) {
  return Rational(A.numerator() * B.denominator(),
                  A.denominator() * B.numerator());
}

/// Checks the Rational class invariant: den > 0, gcd(|num|, den) == 1,
/// canonical zero.
void expectNormalized(const Rational &Value) {
  EXPECT_FALSE(Value.denominator().isNegative());
  EXPECT_FALSE(Value.denominator().isZero());
  if (Value.numerator().isZero())
    EXPECT_TRUE(Value.denominator().isOne());
  else
    EXPECT_TRUE(
        BigInt::gcd(Value.numerator(), Value.denominator()).isOne());
}

} // namespace

class SmallValueRationalProperty : public ::testing::TestWithParam<unsigned> {
};

TEST_P(SmallValueRationalProperty, FastPathMatchesBigIntFormula) {
  std::mt19937_64 Rng(GetParam());
  auto RandomRational = [&](bool Wide) {
    int64_t N = Wide ? randomInt64(Rng)
                     : static_cast<int64_t>(Rng() % 2048) - 1024;
    int64_t D;
    do {
      D = Wide ? randomInt64(Rng) : static_cast<int64_t>(Rng() % 2047) + 1;
    } while (D == 0);
    return Rational(N, D);
  };

  for (int Round = 0; Round < 300; ++Round) {
    // Mix narrow operands (which stay on the fast path) with full-width
    // ones (which overflow into the BigInt path mid-operation).
    bool Wide = Round % 3 == 0;
    Rational A = RandomRational(Wide);
    Rational B = RandomRational(Wide);

    Rational Sum = A + B, Diff = A - B, Prod = A * B;
    EXPECT_EQ(Sum, refAdd(A, B));
    EXPECT_EQ(Diff, refSub(A, B));
    EXPECT_EQ(Prod, refMul(A, B));
    expectNormalized(Sum);
    expectNormalized(Diff);
    expectNormalized(Prod);
    if (!B.isZero()) {
      EXPECT_EQ(A / B, refDiv(A, B));
    }

    // Compound operators match the binary ones.
    Rational C = A;
    C += B;
    EXPECT_EQ(C, Sum);
    C = A;
    C -= B;
    EXPECT_EQ(C, Diff);
    C = A;
    C *= B;
    EXPECT_EQ(C, Prod);
    if (!B.isZero()) {
      C = A;
      C /= B;
      EXPECT_EQ(C, refDiv(A, B));
    }

    // Fused multiply-accumulate (the axpy kernel).
    Rational D = RandomRational(false);
    C = D;
    C.addMul(A, B);
    EXPECT_EQ(C, refAdd(D, Prod));
    C = D;
    C.subMul(A, B);
    EXPECT_EQ(C, refSub(D, Prod));

    // Ordering agrees with exact cross-multiplication.
    EXPECT_EQ(A.compare(B) < 0,
              (A.numerator() * B.denominator())
                      .compare(B.numerator() * A.denominator()) < 0);

    // Hash consistency across construction routes.
    EXPECT_EQ(Sum.hash(), refAdd(A, B).hash());
  }
}

TEST_P(SmallValueRationalProperty, BoundaryOperands) {
  std::mt19937_64 Rng(GetParam() + 1000);
  for (int64_t NA : Boundary) {
    for (int64_t NB : Boundary) {
      int64_t DA = static_cast<int64_t>(Rng() % 1000) + 1;
      int64_t DB = static_cast<int64_t>(Rng() % 1000) + 1;
      Rational A(NA, DA), B(NB, DB);
      expectNormalized(A);
      expectNormalized(B);
      EXPECT_EQ(A + B, refAdd(A, B));
      EXPECT_EQ(A - B, refSub(A, B));
      EXPECT_EQ(A * B, refMul(A, B));
      if (NB != 0) {
        EXPECT_EQ(A / B, refDiv(A, B));
      }
      Rational C = A;
      C.subMul(B, B);
      EXPECT_EQ(C, refSub(A, refMul(B, B)));
      expectNormalized(C);
    }
  }
  // INT64_MIN denominators force the sign-flip fallback.
  Rational NegDen(3, -7);
  EXPECT_EQ(NegDen, Rational(-3, 7));
  Rational MinDen(1, INT64_MIN);
  EXPECT_TRUE(MinDen.isNegative());
  EXPECT_EQ(MinDen * Rational(INT64_MIN, 1), Rational(1));
}

INSTANTIATE_TEST_SUITE_P(Seeds, SmallValueRationalProperty,
                         ::testing::Values(21u, 22u, 23u, 24u));

TEST(SmallValueRationalTest, ExactAccumulationAcrossBoundary) {
  // (999/1000)^k grows past int64 quickly; multiplying back by the
  // reciprocal must return exactly to one (bit-identical exactness).
  Rational Acc(1);
  Rational Step(999, 1000);
  for (int I = 0; I < 40; ++I)
    Acc *= Step;
  EXPECT_FALSE(Acc.numerator().isSmallRep()); // 999^40 needs limbs.
  Rational Back = Acc;
  Rational Inv = Step.reciprocal();
  for (int I = 0; I < 40; ++I)
    Back *= Inv;
  EXPECT_EQ(Back, Rational(1));

  // Summing 1/n exactly n times is exactly one, across a limb-crossing n.
  for (int64_t N : {3LL, 64LL, 1000003LL, (1LL << 40) + 1}) {
    Rational Total;
    Rational Term(1, N);
    for (int64_t I = 0; I < 64; ++I)
      Total += Term;
    EXPECT_EQ(Total, Rational(64, N));
  }
}
