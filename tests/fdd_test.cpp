//===----------------------------------------------------------------------===//
///
/// \file
/// FDD backend tests: canonicity (equivalence as reference equality),
/// operation correctness, closed-form loop solving, parallel case
/// compilation, export/import, and the central soundness property — on
/// randomized guarded programs, the FDD backend agrees exactly with the
/// reference set semantics (Theorem 3.1 made executable).
///
//===----------------------------------------------------------------------===//

#include "ast/Context.h"
#include "ast/Printer.h"
#include "ast/Traversal.h"
#include "parser/Parser.h"
#include "fdd/Compile.h"
#include "fdd/Export.h"
#include "fdd/Query.h"
#include "semantics/SetSemantics.h"

#include <gtest/gtest.h>

#include <random>

using namespace mcnk;
using namespace mcnk::fdd;
using ast::Context;
using ast::Node;

namespace {

struct FddFixture : ::testing::Test {
  Context Ctx;
  FieldId A = Ctx.field("a");
  FieldId B = Ctx.field("b");
  FddManager M;

  FddRef compileP(const Node *P) { return compile(M, P); }

  Packet packet(FieldValue VA, FieldValue VB) {
    Packet P(2);
    P.set(A, VA);
    P.set(B, VB);
    return P;
  }
};

} // namespace

using FddTest = FddFixture;

TEST_F(FddTest, HashConsingGivesCanonicalRefs) {
  FddRef T1 = M.test(A, 1);
  FddRef T2 = M.test(A, 1);
  EXPECT_EQ(T1, T2);
  FddRef S1 = M.seq(M.test(A, 1), M.assign(B, 2));
  FddRef S2 = M.seq(M.test(A, 1), M.assign(B, 2));
  EXPECT_EQ(S1, S2);
  // Identical children collapse the test node.
  EXPECT_EQ(M.inner(A, 1, M.identityLeaf(), M.identityLeaf()),
            M.identityLeaf());
}

TEST_F(FddTest, TestAndAssignEvaluate) {
  FddRef T = M.test(A, 1);
  auto Out1 = M.outputDistribution(T, packet(1, 0));
  EXPECT_EQ(Out1.Outputs[packet(1, 0)], Rational(1));
  auto Out2 = M.outputDistribution(T, packet(2, 0));
  EXPECT_EQ(Out2.Dropped, Rational(1));

  FddRef W = M.assign(A, 3);
  auto Out3 = M.outputDistribution(W, packet(1, 7));
  EXPECT_EQ(Out3.Outputs[packet(3, 7)], Rational(1));
}

TEST_F(FddTest, SeqComposesModifications) {
  // a:=1 ; b:=2 — one leaf with both writes.
  FddRef S = M.seq(M.assign(A, 1), M.assign(B, 2));
  auto Out = M.outputDistribution(S, packet(9, 9));
  EXPECT_EQ(Out.Outputs[packet(1, 2)], Rational(1));
  // a:=1 ; a:=2 — later write wins.
  FddRef S2 = M.seq(M.assign(A, 1), M.assign(A, 2));
  EXPECT_EQ(S2, M.assign(A, 2));
}

TEST_F(FddTest, SeqResolvesTestsAgainstWrites) {
  // a:=1 ; a=1 ≡ a:=1 and a:=1 ; a=2 ≡ drop — the composition resolves
  // the downstream test statically.
  EXPECT_EQ(M.seq(M.assign(A, 1), M.test(A, 1)), M.assign(A, 1));
  EXPECT_EQ(M.seq(M.assign(A, 1), M.test(A, 2)), M.dropLeaf());
}

TEST_F(FddTest, SeqReordersTestsCanonically) {
  // (b=1 ; a:=1) vs a test on the smaller field a appearing later: the
  // composition b=1 ; (a=0 ? ...) must float a's test above b's in the
  // canonical order. Build p = test(b,1), q = if a=0 then a:=5 else drop.
  FddRef P = M.test(B, 1);
  FddRef Q = M.branch(M.test(A, 0), M.assign(A, 5), M.dropLeaf());
  FddRef S = M.seq(P, Q);
  auto Out = M.outputDistribution(S, packet(0, 1));
  EXPECT_EQ(Out.Outputs[packet(5, 1)], Rational(1));
  auto Out2 = M.outputDistribution(S, packet(1, 1));
  EXPECT_EQ(Out2.Dropped, Rational(1));
  auto Out3 = M.outputDistribution(S, packet(0, 2));
  EXPECT_EQ(Out3.Dropped, Rational(1));
}

TEST_F(FddTest, PredicateOps) {
  FddRef T = M.test(A, 1);
  FddRef U = M.test(B, 2);
  EXPECT_TRUE(M.isPredicateFdd(M.negate(T)));
  EXPECT_TRUE(M.isPredicateFdd(M.disjoin(T, U)));
  EXPECT_TRUE(M.isPredicateFdd(M.seq(T, U)));
  EXPECT_FALSE(M.isPredicateFdd(M.assign(A, 1)));
  // Double negation is the identity on canonical diagrams.
  EXPECT_EQ(M.negate(M.negate(T)), T);
  // Excluded middle / contradiction.
  EXPECT_EQ(M.disjoin(T, M.negate(T)), M.identityLeaf());
  EXPECT_EQ(M.seq(T, M.negate(T)), M.dropLeaf());
  // De Morgan, as reference equality.
  EXPECT_EQ(M.negate(M.disjoin(T, U)),
            M.seq(M.negate(T), M.negate(U)));
}

TEST_F(FddTest, ChoiceMergesLeaves) {
  FddRef C = M.choice(Rational(1, 3), M.assign(A, 1), M.assign(A, 2));
  auto Out = M.outputDistribution(C, packet(0, 0));
  EXPECT_EQ(Out.Outputs[packet(1, 0)], Rational(1, 3));
  EXPECT_EQ(Out.Outputs[packet(2, 0)], Rational(2, 3));
  // ⊕ is idempotent and commutes with complemented bias.
  EXPECT_EQ(M.choice(Rational(1, 3), C, C), C);
  EXPECT_EQ(M.choice(Rational(1, 3), M.assign(A, 1), M.assign(A, 2)),
            M.choice(Rational(2, 3), M.assign(A, 2), M.assign(A, 1)));
}

TEST_F(FddTest, BranchBehavesLikeConditional) {
  FddRef G = M.test(A, 1);
  FddRef Ite = M.branch(G, M.assign(B, 1), M.assign(B, 2));
  auto Then = M.outputDistribution(Ite, packet(1, 0));
  EXPECT_EQ(Then.Outputs[packet(1, 1)], Rational(1));
  auto Else = M.outputDistribution(Ite, packet(0, 0));
  EXPECT_EQ(Else.Outputs[packet(0, 2)], Rational(1));
  // Degenerate guards.
  EXPECT_EQ(M.branch(M.identityLeaf(), Ite, M.dropLeaf()), Ite);
  EXPECT_EQ(M.branch(M.dropLeaf(), Ite, M.dropLeaf()), M.dropLeaf());
}

TEST_F(FddTest, LoopGeometricExit) {
  // while a=0 do (a:=1 ⊕½ a:=0): exits almost surely with a=1.
  FddRef Loop = M.solveLoop(
      M.test(A, 0),
      M.choice(Rational(1, 2), M.assign(A, 1), M.assign(A, 0)));
  auto Out = M.outputDistribution(Loop, packet(0, 5));
  EXPECT_EQ(Out.Outputs[packet(1, 5)], Rational(1));
  EXPECT_EQ(Out.Dropped, Rational(0));
  // Guard-false inputs exit unchanged.
  auto Out2 = M.outputDistribution(Loop, packet(7, 5));
  EXPECT_EQ(Out2.Outputs[packet(7, 5)], Rational(1));
  // Statistics describe the symbolic chain.
  EXPECT_GE(M.lastLoopStats().NumTransient, 1u);
}

TEST_F(FddTest, LoopDivergenceDropsMass) {
  // while a=0 do a:=0 diverges on a=0 and is the identity elsewhere.
  FddRef Loop = M.solveLoop(M.test(A, 0), M.assign(A, 0));
  auto Out = M.outputDistribution(Loop, packet(0, 0));
  EXPECT_EQ(Out.Dropped, Rational(1));
  auto Out2 = M.outputDistribution(Loop, packet(3, 0));
  EXPECT_EQ(Out2.Outputs[packet(3, 0)], Rational(1));
}

TEST_F(FddTest, LoopPartialDivergence) {
  // while a=0 do (a:=1 ⊕⅓ a:=0) with an extra drop arm: body
  // a:=1 @ 1/3, drop @ 1/3, a:=0 @ 1/3. Exit mass: Σ (1/3)(1/3)^k = 1/2.
  FddRef Body = M.choice(
      Rational(1, 3), M.assign(A, 1),
      M.choice(Rational(1, 2), M.dropLeaf(), M.assign(A, 0)));
  FddRef Loop = M.solveLoop(M.test(A, 0), Body);
  auto Out = M.outputDistribution(Loop, packet(0, 0));
  EXPECT_EQ(Out.Outputs[packet(1, 0)], Rational(1, 2));
  EXPECT_EQ(Out.Dropped, Rational(1, 2));
}

TEST_F(FddTest, LoopCountsHops) {
  // while a=0 do (b:=b+1 is not expressible; emulate a two-step walk):
  // while a=0 do (if b=0 then b:=1 else (b:=2 ; a:=1)) — terminates in
  // exactly two iterations from (0,0), writing b=2, a=1.
  const Node *P = Ctx.whileLoop(
      Ctx.test(A, 0),
      Ctx.ite(Ctx.test(B, 0), Ctx.assign(B, 1),
              Ctx.seq(Ctx.assign(B, 2), Ctx.assign(A, 1))));
  FddRef Loop = compileP(P);
  auto Out = M.outputDistribution(Loop, packet(0, 0));
  EXPECT_EQ(Out.Outputs[packet(1, 2)], Rational(1));
}

TEST_F(FddTest, CompiledLawsHoldByReferenceEquality) {
  // Canonicity turns semantic laws into pointer equalities.
  auto Prog = [&](const char *Text) {
    auto R = parser::parseProgram(Text, Ctx);
    EXPECT_TRUE(R.ok());
    return compileP(R.Program);
  };
  // Guarded KAT laws.
  EXPECT_EQ(Prog("a=1 ; b:=2"), Prog("(a=1 ; b:=2)"));
  EXPECT_EQ(Prog("if a=1 then b:=1 else b:=2"),
            Prog("if !a=1 then b:=2 else b:=1"));
  EXPECT_EQ(Prog("b:=2 ; a=1 +[1/2] b:=2 ; a=1"), Prog("b:=2 ; a=1"));
  // Loop unrolling: while t do p ≡ if t then (p ; while t do p) else skip.
  EXPECT_EQ(
      Prog("while a=0 do (a:=1 +[1/2] a:=0)"),
      Prog("if a=0 then ((a:=1 +[1/2] a:=0) ; "
           "while a=0 do (a:=1 +[1/2] a:=0)) else skip"));
  // Choice reassociation (⊕ with uniform thirds).
  EXPECT_EQ(Prog("a:=1 +[1/3] (a:=2 +[1/2] a:=3)"),
            Prog("(a:=1 +[1/2] a:=2) +[2/3] a:=3"));
}

TEST_F(FddTest, CaseCompilesSeriallyAndInParallel) {
  std::vector<ast::CaseNode::Branch> Branches;
  for (FieldValue V = 1; V <= 4; ++V)
    Branches.push_back({Ctx.test(A, V), Ctx.assign(B, V)});
  const Node *C = Ctx.caseOf(std::move(Branches), Ctx.drop());

  FddRef Serial = compile(M, C);
  CompileOptions Par;
  Par.ParallelCase = true;
  Par.Threads = 3;
  FddRef Parallel = compile(M, C, Par);
  EXPECT_EQ(Serial, Parallel);

  auto Out = M.outputDistribution(Serial, packet(3, 0));
  EXPECT_EQ(Out.Outputs[packet(3, 3)], Rational(1));
  auto Miss = M.outputDistribution(Serial, packet(9, 0));
  EXPECT_EQ(Miss.Dropped, Rational(1));
}

TEST_F(FddTest, ExportImportRoundTrip) {
  const Node *P = Ctx.ite(
      Ctx.test(A, 1),
      Ctx.choice(Rational(1, 4), Ctx.assign(B, 1), Ctx.drop()),
      Ctx.assign(B, 9));
  FddRef Ref = compileP(P);
  PortableFdd Portable = exportFdd(M, Ref);
  // Same manager: interning must give back the identical diagram.
  EXPECT_EQ(importFdd(M, Portable), Ref);
  // Fresh manager: behavior is preserved.
  FddManager M2;
  FddRef Ref2 = importFdd(M2, Portable);
  for (FieldValue VA = 0; VA <= 2; ++VA) {
    Packet In = packet(VA, 0);
    auto D1 = M.outputDistribution(Ref, In);
    auto D2 = M2.outputDistribution(Ref2, In);
    EXPECT_EQ(D1.Outputs, D2.Outputs);
    EXPECT_EQ(D1.Dropped, D2.Dropped);
  }
}

TEST_F(FddTest, ImportRejectsMalformedPortableFdds) {
  const Node *P = Ctx.ite(Ctx.test(A, 1), Ctx.assign(B, 1), Ctx.drop());
  PortableFdd Good = exportFdd(M, compileP(P));
  ASSERT_GE(Good.Nodes.size(), 2u);

  // Empty diagram.
  PortableFdd Empty;
  EXPECT_DEATH_IF_SUPPORTED(importFdd(M, Empty), "no nodes");

  // Root index past the end.
  PortableFdd BadRoot = Good;
  BadRoot.Root = static_cast<uint32_t>(BadRoot.Nodes.size());
  EXPECT_DEATH_IF_SUPPORTED(importFdd(M, BadRoot), "root index");

  // Child index out of range.
  PortableFdd BadChild = Good;
  for (auto &N : BadChild.Nodes)
    if (!N.IsLeaf) {
      N.Hi = static_cast<uint32_t>(BadChild.Nodes.size() + 7);
      break;
    }
  EXPECT_DEATH_IF_SUPPORTED(importFdd(M, BadChild), "topological");

  // Self-referential (non-topological) child.
  PortableFdd Cycle = Good;
  for (uint32_t I = 0; I < Cycle.Nodes.size(); ++I)
    if (!Cycle.Nodes[I].IsLeaf) {
      Cycle.Nodes[I].Lo = I;
      break;
    }
  EXPECT_DEATH_IF_SUPPORTED(importFdd(M, Cycle), "topological");

  // Topologically indexed but violating the canonical test ordering:
  // a node whose true-subtree re-tests an already-decided field.
  PortableFdd BadOrder;
  PortableFdd::Node DropLeaf;
  DropLeaf.IsLeaf = true;
  DropLeaf.Dist = {{Action::drop(), Rational(1)}};
  PortableFdd::Node IdLeaf;
  IdLeaf.IsLeaf = true;
  IdLeaf.Dist = {{Action(), Rational(1)}};
  PortableFdd::Node Inner1;
  Inner1.Field = 1;
  Inner1.Value = 0;
  Inner1.Hi = 1;
  Inner1.Lo = 0;
  PortableFdd::Node Inner2 = Inner1; // Same field below itself: invalid.
  Inner2.Hi = 2;
  BadOrder.Nodes = {DropLeaf, IdLeaf, Inner1, Inner2};
  BadOrder.Root = 3;
  EXPECT_DEATH_IF_SUPPORTED(importFdd(M, BadOrder), "re-tests field");

  // Leaf distributions that are not distributions.
  PortableFdd ShortLeaf;
  PortableFdd::Node Partial;
  Partial.IsLeaf = true;
  Partial.Dist = {{Action::drop(), Rational(1, 2)}};
  ShortLeaf.Nodes = {Partial};
  EXPECT_DEATH_IF_SUPPORTED(importFdd(M, ShortLeaf), "sum to 1");

  PortableFdd NegLeaf;
  PortableFdd::Node Negative;
  Negative.IsLeaf = true;
  Negative.Dist = {{Action::drop(), Rational(3, 2)},
                   {Action(), Rational(-1, 2)}};
  NegLeaf.Nodes = {Negative};
  EXPECT_DEATH_IF_SUPPORTED(importFdd(M, NegLeaf), "negative probability");

  // The intact original still imports.
  EXPECT_EQ(importFdd(M, Good), compileP(P));
}

TEST_F(FddTest, TryImportRejectsMalformedPortableFddsWithoutAborting) {
  // The daemon path (ARCHITECTURE S16) feeds disk bytes through
  // tryImportFdd, which must turn every malformation that importFdd
  // fatals on into a clean false + diagnostic instead.
  const Node *P = Ctx.ite(Ctx.test(A, 1), Ctx.assign(B, 1), Ctx.drop());
  PortableFdd Good = exportFdd(M, compileP(P));

  auto Rejects = [this](const PortableFdd &Bad, const char *Fragment) {
    FddRef Out = 0;
    std::string Error;
    EXPECT_FALSE(tryImportFdd(M, Bad, Out, &Error));
    EXPECT_NE(Error.find(Fragment), std::string::npos)
        << "error was: " << Error;
  };

  Rejects(PortableFdd(), "no nodes");

  PortableFdd BadRoot = Good;
  BadRoot.Root = static_cast<uint32_t>(BadRoot.Nodes.size());
  Rejects(BadRoot, "root index");

  PortableFdd Cycle = Good;
  for (uint32_t I = 0; I < Cycle.Nodes.size(); ++I)
    if (!Cycle.Nodes[I].IsLeaf) {
      Cycle.Nodes[I].Lo = I;
      break;
    }
  Rejects(Cycle, "topological");

  PortableFdd ShortLeaf;
  PortableFdd::Node Partial;
  Partial.IsLeaf = true;
  Partial.Dist = {{Action::drop(), Rational(1, 2)}};
  ShortLeaf.Nodes = {Partial};
  Rejects(ShortLeaf, "sum to 1");

  // And the good diagram round-trips through the same entry point.
  FddRef Out = 0;
  std::string Error;
  ASSERT_TRUE(tryImportFdd(M, Good, Out, &Error)) << Error;
  EXPECT_EQ(Out, compileP(P));
}

TEST_F(FddTest, QueryRefinement) {
  FddRef Full = M.assign(A, 1);
  FddRef Lossy = M.choice(Rational(3, 4), M.assign(A, 1), M.dropLeaf());
  EXPECT_TRUE(refines(M, Lossy, Full));
  EXPECT_FALSE(refines(M, Full, Lossy));
  EXPECT_TRUE(refines(M, M.dropLeaf(), Lossy));
  // Equivalence is reference equality; approx agrees.
  EXPECT_TRUE(approxEquivalent(M, Lossy, Lossy, 0.0));
  EXPECT_FALSE(approxEquivalent(M, Lossy, Full, 1e-9));
}

TEST_F(FddTest, RefinementSeesThroughRedundantWrites) {
  // a=1 ; a:=1 ≡ a=1 — the write restates the path constraint. Build the
  // two diagrams separately and compare leaf-wise.
  FddRef P = M.seq(M.test(A, 1), M.assign(A, 1));
  FddRef Q = M.test(A, 1);
  EXPECT_TRUE(refines(M, P, Q));
  EXPECT_TRUE(refines(M, Q, P));
  EXPECT_TRUE(approxEquivalent(M, P, Q, 0.0));
}

TEST_F(FddTest, CollectDomain) {
  const Node *P = Ctx.ite(Ctx.test(A, 1), Ctx.assign(B, 7),
                          Ctx.assign(A, 3));
  auto Domain = M.collectDomain(compileP(P));
  EXPECT_EQ(Domain[A], (std::vector<FieldValue>{1, 3}));
  EXPECT_EQ(Domain[B], (std::vector<FieldValue>{7}));
}

TEST_F(FddTest, FloatSolverAgreesWithExact) {
  const Node *P = Ctx.whileLoop(
      Ctx.test(A, 0),
      Ctx.choice(Rational(1, 10), Ctx.assign(A, 1),
                 Ctx.choice(Rational(1, 9), Ctx.assign(A, 2),
                            Ctx.assign(A, 0))));
  FddRef Exact = compileP(P);

  FddManager MFloat(markov::SolverKind::Direct);
  FddRef Approx = compile(MFloat, P);
  // Ship the exact diagram into the float manager and compare there.
  FddRef ExactImported = importFdd(MFloat, exportFdd(M, Exact));
  EXPECT_TRUE(approxEquivalent(MFloat, Approx, ExactImported, 1e-9));

  FddManager MIter(markov::SolverKind::Iterative);
  FddRef Iter = compile(MIter, P);
  FddRef ExactImported2 = importFdd(MIter, exportFdd(M, Exact));
  EXPECT_TRUE(approxEquivalent(MIter, Iter, ExactImported2, 1e-8));
}

//===----------------------------------------------------------------------===//
// Randomized soundness sweep: FDD backend vs reference set semantics.
//===----------------------------------------------------------------------===//

namespace {

/// Generates random guarded programs over two fields with values {0,1,2}.
struct ProgramGenerator {
  Context &Ctx;
  FieldId A, B;
  std::mt19937_64 Rng;

  const Node *randomPredicate(unsigned Depth) {
    std::uniform_int_distribution<int> Pick(0, Depth == 0 ? 2 : 5);
    switch (Pick(Rng)) {
    case 0:
      return Ctx.test(randomField(), randomValue());
    case 1:
      return Ctx.skip();
    case 2:
      return Ctx.test(randomField(), randomValue());
    case 3:
      return Ctx.negate(randomPredicate(Depth - 1));
    case 4:
      return Ctx.unite(randomPredicate(Depth - 1),
                       randomPredicate(Depth - 1));
    default:
      return Ctx.seq(randomPredicate(Depth - 1), randomPredicate(Depth - 1));
    }
  }

  const Node *randomProgram(unsigned Depth) {
    std::uniform_int_distribution<int> Pick(0, Depth == 0 ? 3 : 9);
    switch (Pick(Rng)) {
    case 0:
      return Ctx.assign(randomField(), randomValue());
    case 1:
      return Ctx.test(randomField(), randomValue());
    case 2:
      return Ctx.skip();
    case 3:
      return Ctx.assign(randomField(), randomValue());
    case 4:
      return Ctx.seq(randomProgram(Depth - 1), randomProgram(Depth - 1));
    case 5:
      return Ctx.choice(randomProbability(), randomProgram(Depth - 1),
                        randomProgram(Depth - 1));
    case 6:
      return Ctx.ite(randomPredicate(Depth - 1), randomProgram(Depth - 1),
                     randomProgram(Depth - 1));
    case 7:
      return Ctx.whileLoop(randomPredicate(Depth - 1),
                           randomProgram(Depth - 1));
    case 8:
      return Ctx.negate(randomPredicate(Depth - 1));
    default:
      return Ctx.drop();
    }
  }

  FieldId randomField() {
    return std::uniform_int_distribution<int>(0, 1)(Rng) ? A : B;
  }
  FieldValue randomValue() {
    return std::uniform_int_distribution<FieldValue>(0, 2)(Rng);
  }
  Rational randomProbability() {
    int Num = std::uniform_int_distribution<int>(0, 4)(Rng);
    return Rational(Num, 4);
  }
};

} // namespace

class FddSoundnessProperty : public ::testing::TestWithParam<unsigned> {};

TEST_P(FddSoundnessProperty, AgreesWithReferenceSemantics) {
  Context Ctx;
  FieldId A = Ctx.field("a");
  FieldId B = Ctx.field("b");
  ProgramGenerator Gen{Ctx, A, B, std::mt19937_64(GetParam())};

  // Domain: both fields over {0,1,2} — 9 packets.
  semantics::SetSemantics Sem(Ctx, PacketDomain({3, 3}));
  FddManager M;

  for (int Round = 0; Round < 40; ++Round) {
    const Node *P = Gen.randomProgram(3);
    ASSERT_TRUE(ast::isGuarded(P));
    FddRef Ref = compile(M, P);

    for (std::size_t I = 0; I < Sem.domain().numPackets(); ++I) {
      Packet In = Sem.domain().packet(I);
      auto FddOut = M.outputDistribution(Ref, In);
      const semantics::SetDist &RefOut =
          Sem.eval(P, Sem.singleton(In));

      // Reference outputs on singletons are singletons or ∅.
      Rational RefDrop;
      std::map<Packet, Rational> RefOutputs;
      for (const auto &[Set, W] : RefOut) {
        if (Set == 0) {
          RefDrop += W;
          continue;
        }
        ASSERT_EQ(__builtin_popcountll(Set), 1)
            << "guarded program produced a non-singleton output";
        std::size_t Index = static_cast<std::size_t>(
            __builtin_ctzll(Set));
        RefOutputs[Sem.domain().packet(Index)] += W;
      }
      EXPECT_EQ(FddOut.Outputs, RefOutputs)
          << "program: " << ast::print(P, Ctx.fields());
      EXPECT_EQ(FddOut.Dropped, RefDrop)
          << "program: " << ast::print(P, Ctx.fields());
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, FddSoundnessProperty,
                         ::testing::Values(21u, 22u, 23u, 24u, 25u, 26u));
