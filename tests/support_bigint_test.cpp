//===----------------------------------------------------------------------===//
///
/// \file
/// BigInt unit and property tests. The property suites check BigInt
/// arithmetic against native __int128 as an oracle on a grid of interesting
/// values (including limb boundaries), and ring axioms on wide random
/// values where no native oracle exists.
///
//===----------------------------------------------------------------------===//

#include "support/BigInt.h"

#include <gtest/gtest.h>

#include <cstdint>
#include <random>
#include <vector>

using mcnk::BigInt;

namespace {

BigInt fromI128(__int128 Value) {
  bool Neg = Value < 0;
  unsigned __int128 Mag =
      Neg ? ~static_cast<unsigned __int128>(Value) + 1
          : static_cast<unsigned __int128>(Value);
  BigInt Low = BigInt::fromUnsigned(static_cast<uint64_t>(Mag));
  BigInt High = BigInt::fromUnsigned(static_cast<uint64_t>(Mag >> 64));
  BigInt Result = High.shl(64) + Low;
  return Neg ? -Result : Result;
}

std::string i128ToString(__int128 Value) {
  if (Value == 0)
    return "0";
  bool Neg = Value < 0;
  unsigned __int128 Mag =
      Neg ? ~static_cast<unsigned __int128>(Value) + 1
          : static_cast<unsigned __int128>(Value);
  std::string Digits;
  while (Mag) {
    Digits.push_back(static_cast<char>('0' + static_cast<int>(Mag % 10)));
    Mag /= 10;
  }
  if (Neg)
    Digits.push_back('-');
  std::reverse(Digits.begin(), Digits.end());
  return Digits;
}

/// Interesting 64-bit magnitudes around limb and word boundaries.
const std::vector<int64_t> InterestingValues = {
    0,
    1,
    -1,
    2,
    -2,
    7,
    -7,
    42,
    1000000000,
    -1000000000,
    (1LL << 31) - 1,
    1LL << 31,
    (1LL << 32) - 1,
    1LL << 32,
    (1LL << 32) + 1,
    -(1LL << 32),
    (1LL << 52) + 12345,
    (1LL << 62),
    -(1LL << 62),
    INT64_MAX,
    INT64_MIN + 1,
    INT64_MIN,
};

} // namespace

TEST(BigIntTest, ConstructionAndToString) {
  EXPECT_EQ(BigInt(0).toString(), "0");
  EXPECT_EQ(BigInt(-0).toString(), "0");
  EXPECT_EQ(BigInt(123456789).toString(), "123456789");
  EXPECT_EQ(BigInt(-987654321).toString(), "-987654321");
  EXPECT_EQ(BigInt(INT64_MAX).toString(), "9223372036854775807");
  EXPECT_EQ(BigInt(INT64_MIN).toString(), "-9223372036854775808");
}

TEST(BigIntTest, FromStringRoundTrip) {
  for (const char *Text :
       {"0", "1", "-1", "99999999999999999999999999999999999999",
        "-340282366920938463463374607431768211456", "123",
        "18446744073709551616"}) {
    BigInt Value;
    ASSERT_TRUE(BigInt::fromString(Text, Value)) << Text;
    EXPECT_EQ(Value.toString(), Text);
  }
}

TEST(BigIntTest, FromStringRejectsMalformed) {
  BigInt Value;
  EXPECT_FALSE(BigInt::fromString("", Value));
  EXPECT_FALSE(BigInt::fromString("-", Value));
  EXPECT_FALSE(BigInt::fromString("12a3", Value));
  EXPECT_FALSE(BigInt::fromString("0x10", Value));
  EXPECT_FALSE(BigInt::fromString(" 1", Value));
}

TEST(BigIntTest, ZeroIsCanonical) {
  BigInt A(5), B(5);
  BigInt Zero = A - B;
  EXPECT_TRUE(Zero.isZero());
  EXPECT_FALSE(Zero.isNegative());
  EXPECT_EQ(Zero, BigInt(0));
  EXPECT_EQ((-Zero), BigInt(0));
  EXPECT_EQ(Zero.hash(), BigInt(0).hash());
}

TEST(BigIntTest, FitsAndToInt64) {
  for (int64_t V : InterestingValues) {
    BigInt B(V);
    ASSERT_TRUE(B.fitsInt64()) << V;
    EXPECT_EQ(B.toInt64(), V);
  }
  BigInt TooBig = BigInt(INT64_MAX) + BigInt(1);
  EXPECT_FALSE(TooBig.fitsInt64());
  BigInt MinValue = BigInt(INT64_MIN);
  EXPECT_TRUE(MinValue.fitsInt64());
  EXPECT_FALSE((MinValue - BigInt(1)).fitsInt64());
}

TEST(BigIntTest, BitLength) {
  EXPECT_EQ(BigInt(0).bitLength(), 0u);
  EXPECT_EQ(BigInt(1).bitLength(), 1u);
  EXPECT_EQ(BigInt(2).bitLength(), 2u);
  EXPECT_EQ(BigInt(255).bitLength(), 8u);
  EXPECT_EQ(BigInt(256).bitLength(), 9u);
  EXPECT_EQ(BigInt(1).shl(100).bitLength(), 101u);
}

TEST(BigIntTest, ShiftRoundTrip) {
  BigInt Value;
  ASSERT_TRUE(BigInt::fromString("12345678901234567890123456789", Value));
  for (unsigned Bits : {1u, 31u, 32u, 33u, 64u, 65u, 100u}) {
    EXPECT_EQ(Value.shl(Bits).shr(Bits), Value) << Bits;
  }
  EXPECT_EQ(BigInt(5).shr(3), BigInt(0));
  EXPECT_EQ(BigInt(40).shr(3), BigInt(5));
}

TEST(BigIntTest, PowSmallCases) {
  EXPECT_EQ(BigInt::pow(BigInt(2), 0), BigInt(1));
  EXPECT_EQ(BigInt::pow(BigInt(2), 10), BigInt(1024));
  EXPECT_EQ(BigInt::pow(BigInt(10), 20).toString(), "100000000000000000000");
  EXPECT_EQ(BigInt::pow(BigInt(-3), 3), BigInt(-27));
  EXPECT_EQ(BigInt::pow(BigInt(0), 5), BigInt(0));
}

TEST(BigIntTest, GcdBasics) {
  EXPECT_EQ(BigInt::gcd(BigInt(0), BigInt(0)), BigInt(0));
  EXPECT_EQ(BigInt::gcd(BigInt(0), BigInt(6)), BigInt(6));
  EXPECT_EQ(BigInt::gcd(BigInt(12), BigInt(18)), BigInt(6));
  EXPECT_EQ(BigInt::gcd(BigInt(-12), BigInt(18)), BigInt(6));
  EXPECT_EQ(BigInt::gcd(BigInt(17), BigInt(13)), BigInt(1));
}

TEST(BigIntTest, ToDoubleAccuracy) {
  EXPECT_DOUBLE_EQ(BigInt(0).toDouble(), 0.0);
  EXPECT_DOUBLE_EQ(BigInt(1).toDouble(), 1.0);
  EXPECT_DOUBLE_EQ(BigInt(-12345).toDouble(), -12345.0);
  BigInt Big = BigInt(1).shl(100);
  EXPECT_DOUBLE_EQ(Big.toDouble(), std::ldexp(1.0, 100));
  BigInt Huge = BigInt::pow(BigInt(10), 30);
  EXPECT_NEAR(Huge.toDouble(), 1e30, 1e30 * 1e-12);
}

/// Pairwise oracle test against __int128 over the interesting-value grid.
class BigIntPairProperty
    : public ::testing::TestWithParam<std::tuple<int64_t, int64_t>> {};

TEST_P(BigIntPairProperty, MatchesInt128Oracle) {
  auto [AV, BV] = GetParam();
  __int128 A128 = AV, B128 = BV;
  BigInt A(AV), B(BV);

  EXPECT_EQ((A + B).toString(), i128ToString(A128 + B128));
  EXPECT_EQ((A - B).toString(), i128ToString(A128 - B128));
  EXPECT_EQ((A * B).toString(), i128ToString(A128 * B128));
  EXPECT_EQ(A.compare(B) < 0, AV < BV);
  EXPECT_EQ(A == B, AV == BV);
  if (BV != 0) {
    auto [Q, R] = BigInt::divMod(A, B);
    EXPECT_EQ(Q.toString(), i128ToString(A128 / B128));
    EXPECT_EQ(R.toString(), i128ToString(A128 % B128));
    // Division identity.
    EXPECT_EQ(Q * B + R, A);
  }
}

INSTANTIATE_TEST_SUITE_P(
    Grid, BigIntPairProperty,
    ::testing::Combine(::testing::ValuesIn(InterestingValues),
                       ::testing::ValuesIn(InterestingValues)));

/// Randomized wide-value properties (no native oracle; checks ring axioms
/// and the division identity on multi-limb values).
class BigIntRandomProperty : public ::testing::TestWithParam<unsigned> {};

TEST_P(BigIntRandomProperty, RingAxiomsAndDivision) {
  std::mt19937_64 Rng(GetParam());
  std::uniform_int_distribution<uint64_t> Word;
  auto RandomBig = [&](unsigned Words) {
    BigInt Value;
    for (unsigned I = 0; I < Words; ++I)
      Value = Value.shl(64) + BigInt::fromUnsigned(Word(Rng));
    if (Word(Rng) & 1)
      Value = -Value;
    return Value;
  };

  for (int Round = 0; Round < 25; ++Round) {
    BigInt A = RandomBig(1 + Round % 5);
    BigInt B = RandomBig(1 + (Round / 2) % 4);
    BigInt C = RandomBig(1 + (Round / 3) % 3);

    // Commutativity / associativity / distributivity.
    EXPECT_EQ(A + B, B + A);
    EXPECT_EQ(A * B, B * A);
    EXPECT_EQ((A + B) + C, A + (B + C));
    EXPECT_EQ((A * B) * C, A * (B * C));
    EXPECT_EQ(A * (B + C), A * B + A * C);
    EXPECT_EQ(A - A, BigInt(0));

    // Division identity with both wide and narrow divisors.
    if (!B.isZero()) {
      auto [Q, R] = BigInt::divMod(A, B);
      EXPECT_EQ(Q * B + R, A);
      EXPECT_TRUE(R.abs() < B.abs());
      // Remainder sign follows dividend (C++ truncated semantics).
      if (!R.isZero()) {
        EXPECT_EQ(R.isNegative(), A.isNegative());
      }
    }

    // String round trip.
    BigInt Parsed;
    ASSERT_TRUE(BigInt::fromString(A.toString(), Parsed));
    EXPECT_EQ(Parsed, A);

    // gcd divides both operands.
    BigInt G = BigInt::gcd(A, B);
    if (!G.isZero()) {
      EXPECT_EQ(A % G, BigInt(0));
      EXPECT_EQ(B % G, BigInt(0));
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, BigIntRandomProperty,
                         ::testing::Values(1u, 2u, 3u, 4u, 5u, 6u, 7u, 8u));

TEST(BigIntTest, KnuthDivisionAddBackCase) {
  // A crafted case exercising the rare "add back" branch of Algorithm D:
  // dividend / divisor chosen so the trial quotient digit overestimates.
  BigInt A = BigInt(1).shl(96) - BigInt(1).shl(64) + BigInt(3);
  BigInt B = BigInt(1).shl(64) - BigInt(1);
  auto [Q, R] = BigInt::divMod(A, B);
  EXPECT_EQ(Q * B + R, A);
  EXPECT_TRUE(R.abs() < B.abs());

  BigInt A2 = fromI128((static_cast<__int128>(0x8000000000000000ULL) << 64));
  BigInt B2 = fromI128((static_cast<__int128>(0x8000000000000001ULL)));
  auto [Q2, R2] = BigInt::divMod(A2, B2);
  EXPECT_EQ(Q2 * B2 + R2, A2);
}

TEST(BigIntTest, HashConsistency) {
  BigInt A = BigInt::pow(BigInt(7), 40);
  BigInt B = BigInt::pow(BigInt(7), 40);
  EXPECT_EQ(A.hash(), B.hash());
  EXPECT_EQ(std::hash<BigInt>{}(A), A.hash());
}
