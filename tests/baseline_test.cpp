//===----------------------------------------------------------------------===//
///
/// \file
/// Baseline (Bayonet-substitute) tests: exact agreement with the native
/// backend where loops terminate within the bound, residual accounting for
/// diverging loops, path-count growth (the exponential behavior the Fig 10
/// comparison exhibits), and budget cutoffs.
///
//===----------------------------------------------------------------------===//

#include "analysis/Verifier.h"
#include "baseline/Exhaustive.h"
#include "routing/Routing.h"

#include <gtest/gtest.h>

#include <random>

using namespace mcnk;
using namespace mcnk::baseline;
using ast::Context;
using ast::Node;

TEST(BaselineTest, SimpleChoice) {
  Context Ctx;
  FieldId F = Ctx.field("f");
  const Node *P = Ctx.choice(Rational(1, 3), Ctx.assign(F, 1),
                             Ctx.choice(Rational(1, 2), Ctx.assign(F, 2),
                                        Ctx.drop()));
  InferenceResult R = infer(P, Packet(1));
  Packet One(1);
  One.set(F, 1);
  Packet Two(1);
  Two.set(F, 2);
  EXPECT_EQ(R.Outputs[One], Rational(1, 3));
  EXPECT_EQ(R.Outputs[Two], Rational(1, 3));
  EXPECT_EQ(R.Dropped, Rational(1, 3));
  EXPECT_EQ(R.Residual, Rational(0));
  EXPECT_EQ(R.NumPaths, 3u);
}

TEST(BaselineTest, TriangleMatchesPaperNumbers) {
  Context Ctx;
  routing::TriangleExample Ex = routing::buildTriangleExample(Ctx);
  Packet In = Ex.ingressPacket(Ctx);
  InferenceOptions O;
  O.LoopBound = 16;
  InferenceResult Naive = infer(Ex.NaiveF2, In, O);
  EXPECT_EQ(Naive.deliveredMass(), Rational(4, 5));
  InferenceResult Resilient = infer(Ex.ResilientF2, In, O);
  EXPECT_EQ(Resilient.deliveredMass(), Rational(24, 25));
  EXPECT_EQ(Resilient.Residual, Rational(0));
}

TEST(BaselineTest, ChainMatchesClosedFormAndGrowsPaths) {
  Context Ctx;
  std::size_t PrevPaths = 0;
  for (unsigned K : {1u, 2u, 4u}) {
    Context Local;
    topology::ChainLayout L;
    topology::makeChain(K, L);
    routing::NetworkModel M =
        routing::buildChainModel(L, Rational(1, 10), Local);
    Packet In = M.ingressPacket(0, Local);
    InferenceOptions O;
    O.LoopBound = 6 * K + 4;
    InferenceResult R = infer(M.Program, In, O);
    Rational Expected(1);
    for (unsigned I = 0; I < K; ++I)
      Expected *= Rational(1) - Rational(1, 20);
    EXPECT_EQ(R.deliveredMass(), Expected) << "K=" << K;
    EXPECT_EQ(R.Residual, Rational(0));
    // Exponential-ish path growth: the Fig 10 scaling story.
    EXPECT_GT(R.NumPaths, PrevPaths);
    PrevPaths = R.NumPaths;
  }
  (void)Ctx;
}

TEST(BaselineTest, DivergingLoopLeavesResidual) {
  Context Ctx;
  FieldId F = Ctx.field("f");
  // while f=0 do (f:=0 ⊕½ f:=1): terminates a.s. but any finite unrolling
  // leaves 2^-bound residual.
  const Node *P = Ctx.whileLoop(
      Ctx.test(F, 0),
      Ctx.choice(Rational(1, 2), Ctx.assign(F, 0), Ctx.assign(F, 1)));
  InferenceOptions O;
  O.LoopBound = 10;
  InferenceResult R = infer(P, Packet(1), O);
  Rational ResidualExpected(1, 1024);
  EXPECT_EQ(R.Residual, ResidualExpected);
  EXPECT_EQ(R.deliveredMass(), Rational(1) - ResidualExpected);
  // A truly diverging loop keeps everything as residual.
  const Node *D = Ctx.whileLoop(Ctx.test(F, 0), Ctx.assign(F, 0));
  InferenceResult RD = infer(D, Packet(1), O);
  EXPECT_EQ(RD.Residual, Rational(1));
}

TEST(BaselineTest, PathBudgetStopsExploration) {
  Context Ctx;
  FieldId F = Ctx.field("f");
  // A deep choice tree: 2^10 paths without a budget.
  const Node *P = Ctx.skip();
  for (int I = 0; I < 10; ++I)
    P = Ctx.seq(P, Ctx.choice(Rational(1, 2), Ctx.assign(F, 1),
                              Ctx.assign(F, 2)));
  InferenceOptions O;
  O.PathBudget = 100;
  InferenceResult R = infer(P, Packet(1), O);
  EXPECT_TRUE(R.BudgetExhausted);
  EXPECT_LE(R.NumPaths, 100u);

  InferenceResult Full = infer(P, Packet(1));
  EXPECT_FALSE(Full.BudgetExhausted);
  EXPECT_EQ(Full.NumPaths, 1024u);
  EXPECT_EQ(Full.deliveredMass(), Rational(1));
}

//===----------------------------------------------------------------------===//
// Randomized agreement with the native backend
//===----------------------------------------------------------------------===//

class BaselineAgreementProperty : public ::testing::TestWithParam<unsigned> {
};

TEST_P(BaselineAgreementProperty, OutputsMatchNativeUpToResidual) {
  Context Ctx;
  FieldId A = Ctx.field("a"), B = Ctx.field("b");
  std::mt19937_64 Rng(GetParam());
  analysis::Verifier V;

  auto Random = [&](auto &&Self, unsigned Depth) -> const Node * {
    auto Value = [&] {
      return std::uniform_int_distribution<FieldValue>(0, 2)(Rng);
    };
    auto Field = [&] {
      return std::uniform_int_distribution<int>(0, 1)(Rng) ? A : B;
    };
    std::uniform_int_distribution<int> Pick(0, Depth == 0 ? 2 : 7);
    switch (Pick(Rng)) {
    case 0:
      return Ctx.assign(Field(), Value());
    case 1:
      return Ctx.test(Field(), Value());
    case 2:
      return Ctx.skip();
    case 3:
      return Ctx.seq(Self(Self, Depth - 1), Self(Self, Depth - 1));
    case 4:
      return Ctx.choice(
          Rational(std::uniform_int_distribution<int>(0, 4)(Rng), 4),
          Self(Self, Depth - 1), Self(Self, Depth - 1));
    case 5:
      return Ctx.ite(Ctx.test(Field(), Value()), Self(Self, Depth - 1),
                     Self(Self, Depth - 1));
    case 6:
      return Ctx.whileLoop(Ctx.test(Field(), Value()),
                           Self(Self, Depth - 1));
    default:
      return Ctx.drop();
    }
  };

  InferenceOptions O;
  O.LoopBound = 40;
  for (int Round = 0; Round < 20; ++Round) {
    const Node *P = Random(Random, 3);
    fdd::FddRef Native = V.compile(P);
    for (FieldValue VA = 0; VA <= 2; ++VA) {
      Packet In(2);
      In.set(A, VA);
      In.set(B, 1);
      auto NativeOut = V.manager().outputDistribution(Native, In);
      InferenceResult R = infer(P, In, O);
      // Every baseline output weight is within the residual of native.
      for (const auto &[Pkt, W] : NativeOut.Outputs) {
        auto It = R.Outputs.find(Pkt);
        Rational BaseW = It == R.Outputs.end() ? Rational() : It->second;
        Rational Diff = W - BaseW;
        EXPECT_TRUE(!Diff.isNegative() && Diff <= R.Residual)
            << "output mass mismatch beyond residual";
      }
      Rational DropDiff = R.Dropped - NativeOut.Dropped;
      // Native counts diverging mass as dropped; baseline as residual.
      EXPECT_TRUE(DropDiff <= Rational(0) &&
                  -DropDiff <= R.Residual + Rational(0));
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, BaselineAgreementProperty,
                         ::testing::Values(41u, 42u, 43u));
