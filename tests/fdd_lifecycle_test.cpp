//===----------------------------------------------------------------------===//
///
/// \file
/// The compile-cache + manager-lifecycle suite (docs/ARCHITECTURE.md S12):
/// cache-hit compiles must be reference-equal to cold compiles under every
/// solver kind, serial and parallel; caches shared across verifiers and
/// keyed per solver; LRU eviction under a tiny capacity must stay correct;
/// FddManager::gc() must compact the pools without changing any query
/// answer on live roots, and reset() must return the manager to its
/// freshly constructed state. Also home of the regression test for the
/// solveLoop cache-hit path refreshing lastLoopStats().
///
//===----------------------------------------------------------------------===//

#include "analysis/Verifier.h"
#include "ast/Hash.h"
#include "fdd/CompileCache.h"
#include "fdd/Export.h"
#include "routing/Routing.h"
#include "topology/Topology.h"

#include <gtest/gtest.h>

using namespace mcnk;

namespace {

/// The chain-of-diamonds model — big enough (dozens of AST nodes, one
/// while loop) that every composite boundary clears the cache's size gate.
routing::NetworkModel chainModel(unsigned K, ast::Context &Ctx,
                                 Rational PFail = Rational(1, 10)) {
  topology::ChainLayout L;
  topology::makeChain(K, L);
  return routing::buildChainModel(L, PFail, Ctx);
}

/// Reference-equality across managers: \p Ref (owned by \p Have) denotes
/// the same canonical diagram as \p Expected (owned by \p Want) iff
/// importing the latter into the former's manager lands on \p Ref.
bool sameDiagram(analysis::Verifier &Have, fdd::FddRef Ref,
                 analysis::Verifier &Want, fdd::FddRef Expected) {
  return fdd::importFdd(Have.manager(),
                        fdd::exportFdd(Want.manager(), Expected)) == Ref;
}

} // namespace

//===----------------------------------------------------------------------===//
// Compile cache
//===----------------------------------------------------------------------===//

TEST(CompileCacheTest, HitIsReferenceEqualAcrossSolversAndBackends) {
  const markov::SolverKind Kinds[] = {markov::SolverKind::Exact,
                                      markov::SolverKind::Direct,
                                      markov::SolverKind::Iterative};
  for (markov::SolverKind Kind : Kinds) {
    ast::Context Ctx;
    routing::NetworkModel M = chainModel(2, Ctx);

    analysis::Verifier Cached(Kind);
    Cached.enableCompileCache();
    fdd::FddRef Cold = Cached.compile(M.Program);
    fdd::CompileCache::Stats AfterCold = Cached.cacheStats();
    EXPECT_GT(AfterCold.Insertions, 0u);

    // Hit path: the same program again, serially and in parallel.
    EXPECT_EQ(Cached.compile(M.Program), Cold);
    fdd::CompileCache::Stats AfterHit = Cached.cacheStats();
    EXPECT_GT(AfterHit.Hits, AfterCold.Hits);
    EXPECT_EQ(Cached.compile(M.Program, /*Parallel=*/true, 2), Cold);

    // The cached diagram is the one an uncached engine produces.
    analysis::Verifier Uncached(Kind);
    fdd::FddRef Reference = Uncached.compile(M.Program);
    EXPECT_TRUE(sameDiagram(Cached, Cold, Uncached, Reference))
        << "solver kind " << static_cast<int>(Kind);

    // And it answers queries identically.
    Packet In = M.ingressPacket(0, Ctx);
    EXPECT_EQ(Cached.deliveryProbability(Cold, In),
              Uncached.deliveryProbability(Reference, In));
  }
}

/// Ring shortest-path model with iid per-link failures — the family whose
/// members share the (large) topology `case` sub-program.
routing::NetworkModel ringModel(unsigned N, const Rational &PFail,
                                ast::Context &Ctx) {
  topology::RingLayout L;
  topology::Topology T = topology::makeRing(N, L);
  routing::ModelOptions O;
  O.Failures = routing::FailureModel::iid(PFail);
  return routing::buildShortestPathModel(T, /*Dst=*/1, O, Ctx);
}

TEST(CompileCacheTest, SharedAcrossVerifiersAndFamilies) {
  fdd::CompileCache Shared;
  ast::Context Ctx1;
  routing::NetworkModel M1 = ringModel(6, Rational(1, 20), Ctx1);
  analysis::Verifier V1;
  V1.setCompileCache(&Shared);
  fdd::FddRef R1 = V1.compile(M1.Program);
  fdd::CompileCache::Stats AfterFirst = Shared.stats();
  EXPECT_GT(AfterFirst.Insertions, 0u);

  // A second verifier building the same model in a fresh context: the
  // fingerprints depend only on structure and numeric field ids, so the
  // whole compile is served from the shared cache.
  ast::Context Ctx2;
  routing::NetworkModel M2 = ringModel(6, Rational(1, 20), Ctx2);
  analysis::Verifier V2;
  V2.setCompileCache(&Shared);
  fdd::FddRef R2 = V2.compile(M2.Program);
  EXPECT_GT(Shared.stats().Hits, AfterFirst.Hits);
  EXPECT_TRUE(sameDiagram(V2, R2, V1, R1));

  // A family member differing only in the failure parameter recompiles
  // only the sub-programs that changed: the routing arms resample with a
  // new probability (fresh insertions), but the failure-independent
  // topology `case` is served from the cache (real hits).
  ast::Context Ctx3;
  routing::NetworkModel M3 = ringModel(6, Rational(1, 10), Ctx3);
  analysis::Verifier V3;
  V3.setCompileCache(&Shared);
  fdd::CompileCache::Stats Before = Shared.stats();
  fdd::FddRef R3 = V3.compile(M3.Program);
  fdd::CompileCache::Stats After = Shared.stats();
  EXPECT_GT(After.Hits, Before.Hits) << "no sharing across the family";
  EXPECT_GT(After.Insertions, Before.Insertions);

  analysis::Verifier Uncached;
  EXPECT_TRUE(sameDiagram(V3, R3, Uncached, Uncached.compile(M3.Program)));
}

TEST(CompileCacheTest, KeyedBySolverKind) {
  fdd::CompileCache Shared;
  ast::Context Ctx;
  routing::NetworkModel M = chainModel(2, Ctx);

  analysis::Verifier Exact(markov::SolverKind::Exact);
  Exact.setCompileCache(&Shared);
  fdd::FddRef E = Exact.compile(M.Program);

  // The Direct engine must not be served the Exact engine's loop
  // solutions: same fingerprints, different solver key.
  analysis::Verifier Direct(markov::SolverKind::Direct);
  Direct.setCompileCache(&Shared);
  fdd::CompileCache::Stats Before = Shared.stats();
  fdd::FddRef D = Direct.compile(M.Program);
  EXPECT_GT(Shared.stats().Misses, Before.Misses);

  analysis::Verifier UncachedDirect(markov::SolverKind::Direct);
  EXPECT_TRUE(sameDiagram(Direct, D, UncachedDirect,
                          UncachedDirect.compile(M.Program)));
  // Exact refs stay exact.
  analysis::Verifier UncachedExact(markov::SolverKind::Exact);
  EXPECT_TRUE(sameDiagram(Exact, E, UncachedExact,
                          UncachedExact.compile(M.Program)));
}

TEST(CompileCacheTest, ModularKindKeyedAndHitEqualsCold) {
  // The S14 regression: ModularExact gets its own cache key (an Exact
  // entry must not satisfy a modular lookup, even though both engines are
  // exact), and the modular cached-hit compile is reference-equal to the
  // cold one and to both uncached exact engines.
  fdd::CompileCache Shared;
  ast::Context Ctx;
  routing::NetworkModel M = chainModel(2, Ctx);

  analysis::Verifier Exact(markov::SolverKind::Exact);
  Exact.setCompileCache(&Shared);
  fdd::FddRef E = Exact.compile(M.Program);

  analysis::Verifier Modular(markov::SolverKind::ModularExact);
  Modular.setCompileCache(&Shared);
  fdd::CompileCache::Stats Before = Shared.stats();
  fdd::FddRef Cold = Modular.compile(M.Program);
  fdd::CompileCache::Stats AfterCold = Shared.stats();
  EXPECT_GT(AfterCold.Misses, Before.Misses) << "served a cross-kind entry";
  EXPECT_GT(AfterCold.Insertions, Before.Insertions);

  EXPECT_EQ(Modular.compile(M.Program), Cold);
  EXPECT_GT(Shared.stats().Hits, AfterCold.Hits);
  EXPECT_EQ(Modular.compile(M.Program, /*Parallel=*/true, 2), Cold);

  analysis::Verifier UncachedModular(markov::SolverKind::ModularExact);
  EXPECT_TRUE(sameDiagram(Modular, Cold, UncachedModular,
                          UncachedModular.compile(M.Program)));
  // Both exact engines agree on the diagram itself.
  EXPECT_TRUE(sameDiagram(Modular, Cold, Exact, E));

  Packet In = M.ingressPacket(0, Ctx);
  EXPECT_EQ(Modular.deliveryProbability(Cold, In),
            Exact.deliveryProbability(E, In));
}

TEST(CompileCacheTest, EvictionUnderTinyCapacityStaysCorrect) {
  fdd::CompileCache Tiny(/*Capacity=*/2);
  const Rational PFails[] = {Rational(1, 10), Rational(1, 7),
                             Rational(1, 5), Rational(1, 3)};
  // Round-robin over a family bigger than the capacity, twice, so every
  // compile churns the LRU list; every result must still match the
  // uncached engine.
  for (int Round = 0; Round < 2; ++Round) {
    for (const Rational &PFail : PFails) {
      ast::Context Ctx;
      routing::NetworkModel M = chainModel(2, Ctx, PFail);
      analysis::Verifier Cached;
      Cached.setCompileCache(&Tiny);
      fdd::FddRef R = Cached.compile(M.Program);
      EXPECT_EQ(Cached.compile(M.Program), R);
      analysis::Verifier Uncached;
      EXPECT_TRUE(
          sameDiagram(Cached, R, Uncached, Uncached.compile(M.Program)));
    }
  }
  fdd::CompileCache::Stats S = Tiny.stats();
  EXPECT_GT(S.Evictions, 0u);
  EXPECT_LE(S.Entries, 2u);
}

TEST(CompileCacheTest, OwnedCacheLifecycleOnVerifier) {
  ast::Context Ctx;
  routing::NetworkModel M = chainModel(1, Ctx);
  analysis::Verifier V;
  EXPECT_EQ(V.compileCache(), nullptr);
  EXPECT_EQ(V.cacheStats().Hits, 0u);
  fdd::CompileCache &Cache = V.enableCompileCache(64);
  EXPECT_EQ(V.compileCache(), &Cache);
  EXPECT_EQ(Cache.capacity(), 64u);
  fdd::FddRef R = V.compile(M.Program);
  EXPECT_GT(V.cacheStats().Insertions, 0u);
  V.setCompileCache(nullptr); // Detach: compiles keep working, uncached.
  EXPECT_EQ(V.compileCache(), nullptr);
  EXPECT_EQ(V.compile(M.Program), R);
}

//===----------------------------------------------------------------------===//
// Manager lifecycle: gc and reset
//===----------------------------------------------------------------------===//

TEST(FddLifecycleTest, GcShrinksPoolsAndPreservesQueries) {
  ast::Context Ctx;
  routing::NetworkModel M1 = chainModel(1, Ctx);
  routing::NetworkModel M2 = chainModel(2, Ctx);
  routing::NetworkModel Garbage = chainModel(3, Ctx, Rational(1, 3));

  analysis::Verifier V;
  fdd::FddRef R1 = V.compile(M1.Program);
  fdd::FddRef R2 = V.compile(M2.Program);
  V.compile(Garbage.Program); // Dead the moment its ref is discarded.

  Packet In1 = M1.ingressPacket(0, Ctx);
  Packet In2 = M2.ingressPacket(0, Ctx);
  auto Out1 = V.manager().outputDistribution(R1, In1);
  auto Out2 = V.manager().outputDistribution(R2, In2);
  fdd::ActionDist Leaf1 = V.manager().evalToLeaf(R1, In1);

  std::size_t InnersBefore = V.manager().numInnerNodes();
  std::size_t LeavesBefore = V.manager().numLeaves();
  fdd::GcStats GS = V.manager().gc({&R1, &R2});

  EXPECT_GT(GS.FreedInners, 0u) << "garbage diagram was not collected";
  EXPECT_EQ(GS.LiveInners + GS.FreedInners, InnersBefore);
  EXPECT_EQ(GS.LiveLeaves + GS.FreedLeaves, LeavesBefore);
  EXPECT_EQ(V.manager().numInnerNodes(), GS.LiveInners);
  EXPECT_LT(V.manager().numInnerNodes(), InnersBefore);

  // Live roots answer every query exactly as before.
  auto Out1After = V.manager().outputDistribution(R1, In1);
  auto Out2After = V.manager().outputDistribution(R2, In2);
  EXPECT_TRUE(Out1.Outputs == Out1After.Outputs &&
              Out1.Dropped == Out1After.Dropped);
  EXPECT_TRUE(Out2.Outputs == Out2After.Outputs &&
              Out2.Dropped == Out2After.Dropped);
  EXPECT_EQ(Leaf1, V.manager().evalToLeaf(R1, In1));
  EXPECT_TRUE(V.manager().isPredicateFdd(V.manager().identityLeaf()));

  // The manager keeps working after compaction: recompiling the collected
  // program must reproduce it (caches were rebuilt, not corrupted), and
  // the surviving roots must intern onto themselves.
  fdd::FddRef R1Again = V.compile(M1.Program);
  EXPECT_EQ(R1Again, R1);
  analysis::Verifier Fresh;
  EXPECT_TRUE(
      sameDiagram(V, R2, Fresh, Fresh.compile(M2.Program)));
}

TEST(FddLifecycleTest, GcToleratesDuplicateRootPointers) {
  ast::Context Ctx;
  routing::NetworkModel M = chainModel(2, Ctx);
  analysis::Verifier V;
  fdd::FddRef R = V.compile(M.Program);
  auto Out = V.manager().outputDistribution(R, M.ingressPacket(0, Ctx));
  // The same location handed in twice must be remapped exactly once.
  V.manager().gc({&R, &R});
  auto After = V.manager().outputDistribution(R, M.ingressPacket(0, Ctx));
  EXPECT_TRUE(Out.Outputs == After.Outputs && Out.Dropped == After.Dropped);
  EXPECT_EQ(V.compile(M.Program), R);
}

TEST(FddLifecycleTest, GcWithNoRootsKeepsOnlyConstants) {
  ast::Context Ctx;
  routing::NetworkModel M = chainModel(2, Ctx);
  analysis::Verifier V;
  V.compile(M.Program);
  ASSERT_GT(V.manager().numInnerNodes(), 0u);
  fdd::GcStats GS = V.manager().gc({});
  EXPECT_EQ(V.manager().numInnerNodes(), 0u);
  EXPECT_EQ(GS.LiveInners, 0u);
  EXPECT_GE(V.manager().numLeaves(), 2u); // identity + drop survive.
  // And a rebuilt world is still correct.
  fdd::FddRef R = V.compile(M.Program);
  analysis::Verifier Fresh;
  EXPECT_TRUE(sameDiagram(V, R, Fresh, Fresh.compile(M.Program)));
}

TEST(FddLifecycleTest, ResetReturnsManagerToPristineState) {
  ast::Context Ctx;
  routing::NetworkModel M = chainModel(2, Ctx);
  analysis::Verifier V;
  fdd::FddRef Before = V.compile(M.Program);
  Rational Delivery =
      V.deliveryProbability(Before, M.ingressPacket(0, Ctx));
  ASSERT_GT(V.manager().numInnerNodes(), 0u);

  V.manager().reset();
  EXPECT_EQ(V.manager().numInnerNodes(), 0u);
  EXPECT_EQ(V.manager().numLeaves(), 2u);
  EXPECT_TRUE(V.manager().isPredicateFdd(V.manager().identityLeaf()));
  EXPECT_TRUE(V.manager().isPredicateFdd(V.manager().dropLeaf()));

  // Recompile from scratch: same answers as before the reset.
  fdd::FddRef After = V.compile(M.Program);
  EXPECT_EQ(V.deliveryProbability(After, M.ingressPacket(0, Ctx)),
            Delivery);
}

//===----------------------------------------------------------------------===//
// solveLoop cache-hit statistics (regression)
//===----------------------------------------------------------------------===//

TEST(FddLifecycleTest, LoopStatsRefreshedOnLoopCacheHit) {
  // One manager, two chain models: compiling K=1 then K=2 then K=1 again
  // makes the third solveLoop a LoopCache hit. lastLoopStats() must then
  // describe K=1's chain again, not keep reporting K=2's numbers.
  ast::Context Ctx;
  routing::NetworkModel M1 = chainModel(1, Ctx);
  routing::NetworkModel M2 = chainModel(2, Ctx);
  analysis::Verifier V;

  V.compile(M1.Program);
  fdd::LoopSolveStats S1 = V.manager().lastLoopStats();
  EXPECT_EQ(S1.NumStates, 6u); // 4K + 2 for K = 1.

  V.compile(M2.Program);
  fdd::LoopSolveStats S2 = V.manager().lastLoopStats();
  EXPECT_EQ(S2.NumStates, 10u); // 4K + 2 for K = 2.
  ASSERT_NE(S1.NumStates, S2.NumStates);

  V.compile(M1.Program); // LoopCache hit.
  const fdd::LoopSolveStats &Hit = V.manager().lastLoopStats();
  EXPECT_EQ(Hit.NumStates, S1.NumStates);
  EXPECT_EQ(Hit.NumTransient, S1.NumTransient);
  EXPECT_EQ(Hit.NumAbsorbing, S1.NumAbsorbing);
  EXPECT_EQ(Hit.NumQEntries, S1.NumQEntries);
}

//===----------------------------------------------------------------------===//
// Fingerprint sanity at the cache boundary
//===----------------------------------------------------------------------===//

TEST(FddLifecycleTest, FingerprintDistinguishesSolverRelevantStructure) {
  // Two models differing only in the failure probability must have
  // different program fingerprints (same shape, different rational).
  ast::Context CtxA, CtxB;
  routing::NetworkModel A = chainModel(2, CtxA, Rational(1, 10));
  routing::NetworkModel B = chainModel(2, CtxB, Rational(1, 9));
  EXPECT_NE(ast::programHash(A.Program), ast::programHash(B.Program));
  // And the same model built twice fingerprints identically.
  ast::Context CtxC;
  routing::NetworkModel C = chainModel(2, CtxC, Rational(1, 10));
  EXPECT_EQ(ast::programHash(A.Program), ast::programHash(C.Program));
}
