//===----------------------------------------------------------------------===//
///
/// \file
/// Linear algebra tests: dense solves over double and Rational, CSC sparse
/// construction and products, sparse LU vs the dense oracle on randomized
/// systems, and Neumann iteration convergence.
///
//===----------------------------------------------------------------------===//

#include "linalg/Dense.h"
#include "linalg/Solve.h"
#include "linalg/Sparse.h"
#include "linalg/SparseLU.h"
#include "support/Rational.h"

#include <gtest/gtest.h>

#include <cmath>
#include <random>

using namespace mcnk;
using namespace mcnk::linalg;

TEST(DenseMatrixTest, IdentityAndProduct) {
  auto I3 = DenseMatrix<double>::identity(3);
  DenseMatrix<double> A(3, 3);
  int V = 1;
  for (std::size_t R = 0; R < 3; ++R)
    for (std::size_t C = 0; C < 3; ++C)
      A.at(R, C) = V++;
  EXPECT_EQ(A * I3, A);
  EXPECT_EQ(I3 * A, A);

  DenseMatrix<double> B = A * A;
  // Row 0 of A*A: [1 2 3]·columns.
  EXPECT_DOUBLE_EQ(B.at(0, 0), 1 * 1 + 2 * 4 + 3 * 7);
  EXPECT_DOUBLE_EQ(B.at(2, 1), 7 * 2 + 8 * 5 + 9 * 8);
}

TEST(DenseSolveTest, SolvesDouble2x2) {
  DenseMatrix<double> A(2, 2), B(2, 1);
  A.at(0, 0) = 2;
  A.at(0, 1) = 1;
  A.at(1, 0) = 1;
  A.at(1, 1) = 3;
  B.at(0, 0) = 5;
  B.at(1, 0) = 10;
  ASSERT_TRUE(denseSolveInPlace(A, B));
  EXPECT_NEAR(B.at(0, 0), 1.0, 1e-12);
  EXPECT_NEAR(B.at(1, 0), 3.0, 1e-12);
}

TEST(DenseSolveTest, SolvesRationalExactly) {
  // Hilbert-style ill-conditioned matrix: exact arithmetic handles what
  // floats cannot.
  const std::size_t N = 6;
  DenseMatrix<Rational> H(N, N);
  for (std::size_t R = 0; R < N; ++R)
    for (std::size_t C = 0; C < N; ++C)
      H.at(R, C) = Rational(1, static_cast<int64_t>(R + C + 1));
  // RHS = H * ones, so the solution must be exactly ones.
  DenseMatrix<Rational> B(N, 1);
  for (std::size_t R = 0; R < N; ++R)
    for (std::size_t C = 0; C < N; ++C)
      B.at(R, 0) += H.at(R, C);
  ASSERT_TRUE(denseSolveInPlace(H, B));
  for (std::size_t R = 0; R < N; ++R)
    EXPECT_EQ(B.at(R, 0), Rational(1)) << "row " << R;
}

TEST(DenseSolveTest, DetectsSingular) {
  DenseMatrix<double> A(2, 2), B(2, 1);
  A.at(0, 0) = 1;
  A.at(0, 1) = 2;
  A.at(1, 0) = 2;
  A.at(1, 1) = 4;
  B.at(0, 0) = 1;
  B.at(1, 0) = 1;
  EXPECT_FALSE(denseSolveInPlace(A, B));

  DenseMatrix<Rational> AR(2, 2), BR(2, 1);
  AR.at(0, 0) = Rational(1, 3);
  AR.at(0, 1) = Rational(2, 3);
  AR.at(1, 0) = Rational(1, 6);
  AR.at(1, 1) = Rational(1, 3);
  EXPECT_FALSE(denseSolveInPlace(AR, BR));
}

TEST(SparseMatrixTest, FromTripletsSumsDuplicates) {
  SparseMatrix M = SparseMatrix::fromTriplets(
      3, 3, {{0, 0, 1.0}, {0, 0, 2.0}, {2, 1, 4.0}, {1, 2, -1.0}});
  EXPECT_EQ(M.numNonZeros(), 3u);
  std::vector<double> X = {1.0, 1.0, 1.0};
  std::vector<double> Y = M.multiply(X);
  EXPECT_DOUBLE_EQ(Y[0], 3.0);
  EXPECT_DOUBLE_EQ(Y[1], -1.0);
  EXPECT_DOUBLE_EQ(Y[2], 4.0);
}

TEST(SparseMatrixTest, CancellingDuplicatesDrop) {
  SparseMatrix M =
      SparseMatrix::fromTriplets(2, 2, {{0, 0, 1.0}, {0, 0, -1.0}});
  EXPECT_EQ(M.numNonZeros(), 0u);
}

TEST(SparseMatrixTest, TransposeRoundTrip) {
  SparseMatrix M = SparseMatrix::fromTriplets(
      2, 3, {{0, 0, 1.0}, {0, 2, 5.0}, {1, 1, -2.0}});
  SparseMatrix T = M.transpose();
  EXPECT_EQ(T.numRows(), 3u);
  EXPECT_EQ(T.numCols(), 2u);
  std::vector<double> X = {2.0, 3.0};
  // M^T * x computed two ways.
  std::vector<double> ViaT = T.multiply(X);
  std::vector<double> ViaMT = M.multiplyTranspose(X);
  ASSERT_EQ(ViaT.size(), ViaMT.size());
  for (std::size_t I = 0; I < ViaT.size(); ++I)
    EXPECT_DOUBLE_EQ(ViaT[I], ViaMT[I]);
}

TEST(SparseLUTest, SolvesSmallFixedSystem) {
  // A = [4 1 0; 1 3 1; 0 1 2], b = A*[1 2 3]^T.
  SparseMatrix A = SparseMatrix::fromTriplets(3, 3,
                                              {{0, 0, 4.0},
                                               {0, 1, 1.0},
                                               {1, 0, 1.0},
                                               {1, 1, 3.0},
                                               {1, 2, 1.0},
                                               {2, 1, 1.0},
                                               {2, 2, 2.0}});
  SparseLU LU;
  ASSERT_TRUE(LU.factor(A));
  std::vector<double> B = {4.0 + 2.0, 1.0 + 6.0 + 3.0, 2.0 + 6.0};
  LU.solve(B);
  EXPECT_NEAR(B[0], 1.0, 1e-12);
  EXPECT_NEAR(B[1], 2.0, 1e-12);
  EXPECT_NEAR(B[2], 3.0, 1e-12);
}

TEST(SparseLUTest, RequiresPivotingOnZeroDiagonal) {
  // Diagonal starts at zero; factorization must row-swap to succeed.
  SparseMatrix A = SparseMatrix::fromTriplets(
      2, 2, {{0, 1, 1.0}, {1, 0, 1.0}});
  SparseLU LU;
  ASSERT_TRUE(LU.factor(A));
  std::vector<double> B = {3.0, 7.0};
  LU.solve(B);
  EXPECT_NEAR(B[0], 7.0, 1e-12);
  EXPECT_NEAR(B[1], 3.0, 1e-12);
}

TEST(SparseLUTest, DetectsSingular) {
  SparseMatrix A = SparseMatrix::fromTriplets(
      2, 2, {{0, 0, 1.0}, {0, 1, 2.0}, {1, 0, 2.0}, {1, 1, 4.0}});
  SparseLU LU;
  EXPECT_FALSE(LU.factor(A));

  // Structurally singular: empty column.
  SparseMatrix A2 = SparseMatrix::fromTriplets(2, 2, {{0, 0, 1.0}});
  SparseLU LU2;
  EXPECT_FALSE(LU2.factor(A2));
}

/// Randomized diagonally-dominant systems: sparse LU must agree with the
/// dense elimination oracle.
class SparseLUProperty : public ::testing::TestWithParam<unsigned> {};

TEST_P(SparseLUProperty, AgreesWithDenseOracle) {
  std::mt19937_64 Rng(GetParam());
  std::uniform_real_distribution<double> Coef(-1.0, 1.0);
  std::uniform_int_distribution<std::size_t> Size(5, 40);
  std::uniform_int_distribution<int> Fill(0, 9);

  for (int Round = 0; Round < 5; ++Round) {
    std::size_t N = Size(Rng);
    std::vector<Triplet> Entries;
    DenseMatrix<double> Dense(N, N);
    for (std::size_t R = 0; R < N; ++R) {
      double RowSum = 0.0;
      for (std::size_t C = 0; C < N; ++C) {
        if (R != C && Fill(Rng) < 3) {
          double V = Coef(Rng);
          Entries.push_back({R, C, V});
          Dense.at(R, C) = V;
          RowSum += std::fabs(V);
        }
      }
      double Diag = RowSum + 1.0; // Strict diagonal dominance.
      Entries.push_back({R, R, Diag});
      Dense.at(R, R) = Diag;
    }

    std::vector<double> B(N);
    for (double &V : B)
      V = Coef(Rng);

    SparseMatrix A = SparseMatrix::fromTriplets(N, N, Entries);
    SparseLU LU;
    ASSERT_TRUE(LU.factor(A));
    std::vector<double> XSparse = B;
    LU.solve(XSparse);

    DenseMatrix<double> RHS(N, 1);
    for (std::size_t I = 0; I < N; ++I)
      RHS.at(I, 0) = B[I];
    ASSERT_TRUE(denseSolveInPlace(Dense, RHS));

    for (std::size_t I = 0; I < N; ++I)
      EXPECT_NEAR(XSparse[I], RHS.at(I, 0), 1e-9) << "row " << I;

    // Residual check: A * x == b.
    std::vector<double> Residual = A.multiply(XSparse);
    for (std::size_t I = 0; I < N; ++I)
      EXPECT_NEAR(Residual[I], B[I], 1e-9);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, SparseLUProperty,
                         ::testing::Values(100u, 200u, 300u, 400u, 500u,
                                           600u));

TEST(NeumannSolveTest, MatchesClosedForm) {
  // Q = [[0, 1/2], [1/4, 0]]; solve (I-Q)x = b.
  SparseMatrix Q =
      SparseMatrix::fromTriplets(2, 2, {{0, 1, 0.5}, {1, 0, 0.25}});
  std::vector<double> B = {1.0, 1.0};
  std::vector<double> X;
  ASSERT_GT(neumannSolve(Q, B, X), 0u);
  // (I-Q)^-1 = 1/(1-1/8) * [[1, 1/2],[1/4, 1]].
  double Scale = 1.0 / (1.0 - 0.125);
  EXPECT_NEAR(X[0], Scale * 1.5, 1e-9);
  EXPECT_NEAR(X[1], Scale * 1.25, 1e-9);
}

TEST(NeumannSolveTest, ReportsNonConvergence) {
  // Spectral radius 1: the Neumann series diverges (row sums to 1 with no
  // drain), so the solver must give up.
  SparseMatrix Q =
      SparseMatrix::fromTriplets(2, 2, {{0, 1, 1.0}, {1, 0, 1.0}});
  std::vector<double> B = {1.0, 1.0};
  std::vector<double> X;
  EXPECT_EQ(neumannSolve(Q, B, X, 1e-12, 500), 0u);
}
