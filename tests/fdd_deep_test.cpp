//===----------------------------------------------------------------------===//
///
/// \file
/// Depth stress for the FddManager's compiler operations: every op that
/// used to recurse along the diagram (seq, negate, disjoin, choice,
/// branch, seqAction via seq) must survive test chains tens of thousands
/// of nodes deep, like the iterative traversals (diagramSize,
/// isPredicateFdd, export) always did. A 50k-deep chain overflows an 8 MiB
/// call stack under the old structural recursion (≈150+ bytes/frame), so
/// these tests are regression proof that the explicit-stack rewrites
/// stay in place.
///
//===----------------------------------------------------------------------===//

#include "fdd/Export.h"
#include "fdd/Fdd.h"

#include <gtest/gtest.h>

using namespace mcnk;
using namespace mcnk::fdd;

namespace {

constexpr unsigned Depth = 50000;
// Fields beyond the chain, used as scratch by actions.
constexpr FieldId Scratch0 = Depth;
constexpr FieldId Scratch1 = Depth + 1;
constexpr std::size_t NumFields = Depth + 2;

/// A predicate chain of \p N inner nodes: field i tests \p Value with the
/// next field's test below it (true-branch \p Hi). One field per level
/// keeps every inner() call O(1) — a single multi-valued field would make
/// the canonicalizing cofactor walk quadratic in the chain length.
FddRef buildChain(FddManager &M, unsigned N, FieldValue Value, FddRef Hi) {
  FddRef Acc = M.dropLeaf();
  for (unsigned F = N; F-- > 0;)
    Acc = M.inner(static_cast<FieldId>(F), Value, Hi, Acc);
  return Acc;
}

Packet allZero() { return Packet(NumFields); }
Packet allOnes() {
  Packet P(NumFields);
  for (std::size_t F = 0; F < NumFields; ++F)
    P.set(static_cast<FieldId>(F), 99); // Matches no chain test.
  return P;
}

} // namespace

TEST(FddDeepChainTest, ConstructionAndIterativeBaselines) {
  FddManager M;
  FddRef Chain = buildChain(M, Depth, 0, M.identityLeaf());
  EXPECT_EQ(M.diagramSize(Chain), Depth + 2u); // N inners + two leaves.
  EXPECT_TRUE(M.isPredicateFdd(Chain));
  EXPECT_EQ(M.evalToLeaf(Chain, allZero()), M.leafDist(M.identityLeaf()));
  EXPECT_EQ(M.evalToLeaf(Chain, allOnes()), M.leafDist(M.dropLeaf()));
}

TEST(FddDeepChainTest, NegateSurvivesDeepChains) {
  FddManager M;
  FddRef Chain = buildChain(M, Depth, 0, M.identityLeaf());
  FddRef Neg = M.negate(Chain);
  EXPECT_EQ(M.diagramSize(Neg), Depth + 2u);
  EXPECT_EQ(M.evalToLeaf(Neg, allZero()), M.leafDist(M.dropLeaf()));
  EXPECT_EQ(M.evalToLeaf(Neg, allOnes()), M.leafDist(M.identityLeaf()));
  // Involution lands on the identical ref (canonicity).
  EXPECT_EQ(M.negate(Neg), Chain);
}

TEST(FddDeepChainTest, DisjoinSurvivesDeepChains) {
  FddManager M;
  FddRef Zeros = buildChain(M, Depth, 0, M.identityLeaf());
  FddRef Ones = buildChain(M, Depth, 1, M.identityLeaf());
  FddRef Either = M.disjoin(Zeros, Ones);
  EXPECT_TRUE(M.isPredicateFdd(Either));
  EXPECT_EQ(M.evalToLeaf(Either, allZero()), M.leafDist(M.identityLeaf()));
  Packet OneHot = allOnes();
  OneHot.set(Depth / 2, 1);
  EXPECT_EQ(M.evalToLeaf(Either, OneHot), M.leafDist(M.identityLeaf()));
  EXPECT_EQ(M.evalToLeaf(Either, allOnes()), M.leafDist(M.dropLeaf()));
  // Idempotence and commutativity on the canonical diagrams.
  EXPECT_EQ(M.disjoin(Either, Either), Either);
  EXPECT_EQ(M.disjoin(Ones, Zeros), Either);
}

TEST(FddDeepChainTest, BranchSurvivesDeepGuards) {
  FddManager M;
  FddRef Guard = buildChain(M, Depth, 0, M.identityLeaf());
  FddRef Then = M.assign(Scratch0, 7);
  FddRef Else = M.assign(Scratch0, 9);
  FddRef Ite = M.branch(Guard, Then, Else);
  EXPECT_EQ(M.evalToLeaf(Ite, allZero()), M.leafDist(Then));
  EXPECT_EQ(M.evalToLeaf(Ite, allOnes()), M.leafDist(Else));
}

TEST(FddDeepChainTest, ChoiceSurvivesDeepOperands) {
  FddManager M;
  FddRef Guard = buildChain(M, Depth, 0, M.identityLeaf());
  FddRef A = M.branch(Guard, M.assign(Scratch0, 1), M.dropLeaf());
  FddRef B = M.branch(Guard, M.assign(Scratch0, 2), M.dropLeaf());
  FddRef Mix = M.choice(Rational(1, 3), A, B);
  const ActionDist &Taken = M.evalToLeaf(Mix, allZero());
  ASSERT_EQ(Taken.entries().size(), 2u);
  EXPECT_EQ(Taken.entries()[0].second, Rational(1, 3));
  EXPECT_EQ(Taken.entries()[1].second, Rational(2, 3));
  EXPECT_EQ(M.evalToLeaf(Mix, allOnes()), M.leafDist(M.dropLeaf()));
}

TEST(FddDeepChainTest, SeqSurvivesDeepLhs) {
  FddManager M;
  FddRef Chain = buildChain(M, Depth, 0, M.identityLeaf());
  // Deep predicate ; single write — seq recurses over the whole chain.
  FddRef Composite = M.seq(Chain, M.assign(Scratch0, 5));
  auto OutPass = M.outputDistribution(Composite, allZero());
  ASSERT_EQ(OutPass.Outputs.size(), 1u);
  EXPECT_EQ(OutPass.Outputs.begin()->first.get(Scratch0), 5u);
  EXPECT_TRUE(OutPass.Dropped.isZero());
  auto OutDrop = M.outputDistribution(Composite, allOnes());
  EXPECT_TRUE(OutDrop.Outputs.empty());
  EXPECT_TRUE(OutDrop.Dropped.isOne());
}

TEST(FddDeepChainTest, SeqActionAndWeightedSumSurviveDeepRhs) {
  FddManager M;
  FddRef Chain = buildChain(M, Depth, 0, M.identityLeaf());
  // A two-action leaf (the convex combination of two writes) composed
  // before a deep diagram: drives seqAction down all 50k nodes for each
  // action and reassembles through weightedSum + choice.
  FddRef TwoWrites =
      M.choice(Rational(1, 2), M.assign(Scratch0, 1), M.assign(Scratch1, 1));
  ASSERT_TRUE(isLeafRef(TwoWrites));
  FddRef Composite = M.seq(TwoWrites, Chain);
  // Neither scratch write changes the chain's verdict.
  auto OutPass = M.outputDistribution(Composite, allZero());
  EXPECT_EQ(OutPass.Outputs.size(), 2u);
  EXPECT_TRUE(OutPass.Dropped.isZero());
  auto OutDrop = M.outputDistribution(Composite, allOnes());
  EXPECT_TRUE(OutDrop.Outputs.empty());
  EXPECT_TRUE(OutDrop.Dropped.isOne());
}

TEST(FddDeepChainTest, ExportImportRoundTripsDeepChains) {
  FddManager M;
  FddRef Chain = buildChain(M, Depth, 0, M.identityLeaf());
  PortableFdd Portable = exportFdd(M, Chain);
  EXPECT_EQ(Portable.Nodes.size(), Depth + 2u);
  EXPECT_EQ(importFdd(M, Portable), Chain);
  FddManager Fresh;
  FddRef Imported = importFdd(Fresh, Portable);
  EXPECT_EQ(Fresh.diagramSize(Imported), Depth + 2u);
}
