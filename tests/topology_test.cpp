//===----------------------------------------------------------------------===//
///
/// \file
/// Topology tests: generator structure (sizes, degrees, wiring
/// invariants), the AB FatTree detour property (appendix E), and DOT
/// round-tripping.
///
//===----------------------------------------------------------------------===//

#include "topology/Topology.h"

#include <gtest/gtest.h>

#include <set>

using namespace mcnk;
using namespace mcnk::topology;

TEST(TopologyTest, LinkLookup) {
  Topology T(2);
  T.addCable(1, 5, 2, 7);
  auto L = T.linkFrom(1, 5);
  ASSERT_TRUE(L.has_value());
  EXPECT_EQ(L->Dst, 2u);
  EXPECT_EQ(L->DstPort, 7u);
  auto R = T.linkFrom(2, 7);
  ASSERT_TRUE(R.has_value());
  EXPECT_EQ(R->Dst, 1u);
  EXPECT_FALSE(T.linkFrom(1, 1).has_value());
  EXPECT_EQ(T.degree(1), 1u);
}

class FatTreeParam : public ::testing::TestWithParam<unsigned> {};

TEST_P(FatTreeParam, SizesMatchFormula) {
  unsigned P = GetParam();
  FatTreeLayout L;
  Topology T = makeFatTree(P, L);
  // 5p²/4 switches (paper §6).
  EXPECT_EQ(T.numSwitches(), 5 * P * P / 4);
  EXPECT_EQ(L.numSwitches(), T.numSwitches());
  // Every link leaves a valid port and lands on its reverse.
  for (const Link &Lk : T.links()) {
    auto Back = T.linkFrom(Lk.Dst, Lk.DstPort);
    ASSERT_TRUE(Back.has_value());
    EXPECT_EQ(Back->Dst, Lk.Src);
    EXPECT_EQ(Back->DstPort, Lk.SrcPort);
  }
  // Core count and degrees.
  unsigned H = P / 2;
  EXPECT_EQ(L.numCores(), H * H);
  for (unsigned X = 0; X < H; ++X)
    for (unsigned Y = 0; Y < H; ++Y)
      EXPECT_EQ(T.degree(L.coreId(X, Y)), P); // One port per pod.
  // Edge/agg fabric degrees (host ports carry no links).
  EXPECT_EQ(T.degree(L.edgeId(0, 0)), H);
  EXPECT_EQ(T.degree(L.aggId(0, 0)), P);
}

INSTANTIATE_TEST_SUITE_P(Ps, FatTreeParam, ::testing::Values(2u, 4u, 6u, 8u));

TEST(TopologyTest, AbFatTreeDetourProperty) {
  // The defining property (appendix E): in an AB FatTree, each core
  // reaches aggs of *different indices* in A-pods vs B-pods, so an
  // opposite-type agg leads to cores that reach the destination pod at a
  // different agg — the 3-hop detour. In a standard FatTree every pod
  // attaches a core at the same agg index.
  FatTreeLayout L;
  Topology T = makeAbFatTree(4, L);
  unsigned H = L.H;
  for (unsigned X = 0; X < H; ++X)
    for (unsigned Y = 0; Y < H; ++Y) {
      SwitchId Core = L.coreId(X, Y);
      for (unsigned Pod = 0; Pod < L.numPods(); ++Pod) {
        auto Down = T.linkFrom(Core, L.corePodPort(Pod));
        ASSERT_TRUE(Down.has_value());
        unsigned AggIndex = L.indexOf(Down->Dst);
        EXPECT_EQ(AggIndex, L.isTypeB(Pod) ? Y : X);
      }
    }
  // Cross-check agg-side wiring against coreAbove.
  for (unsigned Pod = 0; Pod < L.numPods(); ++Pod)
    for (unsigned AggIdx = 0; AggIdx < H; ++AggIdx)
      for (unsigned M = 0; M < H; ++M) {
        auto Up = T.linkFrom(L.aggId(Pod, AggIdx), L.aggUpPort(M));
        ASSERT_TRUE(Up.has_value());
        EXPECT_EQ(Up->Dst, L.coreAbove(Pod, AggIdx, M));
      }
}

TEST(TopologyTest, StandardVsAbDifferOnlyInBPods) {
  FatTreeLayout LStd, LAb;
  Topology Std = makeFatTree(4, LStd);
  Topology Ab = makeAbFatTree(4, LAb);
  EXPECT_EQ(Std.numSwitches(), Ab.numSwitches());
  // Pod 0 (type A in both) is wired identically.
  for (unsigned M = 0; M < LStd.H; ++M) {
    auto S = Std.linkFrom(LStd.aggId(0, 1), LStd.aggUpPort(M));
    auto A = Ab.linkFrom(LAb.aggId(0, 1), LAb.aggUpPort(M));
    ASSERT_TRUE(S && A);
    EXPECT_EQ(S->Dst, A->Dst);
  }
  // Pod 1 differs (type B in the AB variant).
  bool Differs = false;
  for (unsigned M = 0; M < LStd.H; ++M) {
    auto S = Std.linkFrom(LStd.aggId(1, 1), LStd.aggUpPort(M));
    auto A = Ab.linkFrom(LAb.aggId(1, 1), LAb.aggUpPort(M));
    ASSERT_TRUE(S && A);
    if (S->Dst != A->Dst)
      Differs = true;
  }
  EXPECT_TRUE(Differs);
}

TEST(TopologyTest, ChainStructure) {
  ChainLayout L;
  Topology T = makeChain(3, L);
  EXPECT_EQ(T.numSwitches(), 12u);
  // Each diamond: split -> {upper, lower} -> join -> next split.
  for (unsigned D = 0; D < 3; ++D) {
    EXPECT_EQ(T.linkFrom(L.split(D), 1)->Dst, L.upper(D));
    EXPECT_EQ(T.linkFrom(L.split(D), 2)->Dst, L.lower(D));
    EXPECT_EQ(T.linkFrom(L.upper(D), 2)->Dst, L.join(D));
    EXPECT_EQ(T.linkFrom(L.lower(D), 2)->Dst, L.join(D));
  }
  EXPECT_EQ(T.linkFrom(L.join(0), 3)->Dst, L.split(1));
  EXPECT_FALSE(T.linkFrom(L.join(2), 3).has_value());
}

TEST(TopologyTest, TriangleMatchesFigure1) {
  Topology T = makeTriangle();
  EXPECT_EQ(T.numSwitches(), 3u);
  EXPECT_EQ(T.linkFrom(1, 2)->Dst, 2u);
  EXPECT_EQ(T.linkFrom(1, 3)->Dst, 3u);
  EXPECT_EQ(T.linkFrom(3, 2)->Dst, 2u);
  EXPECT_EQ(T.linkFrom(3, 2)->DstPort, 3u);
}

TEST(TopologyTest, DotRoundTrip) {
  FatTreeLayout L;
  Topology T = makeAbFatTree(4, L);
  std::string Dot = T.toDot();
  Topology Parsed;
  std::string Error;
  ASSERT_TRUE(Topology::fromDot(Dot, Parsed, Error)) << Error;
  EXPECT_EQ(Parsed.numSwitches(), T.numSwitches());
  ASSERT_EQ(Parsed.links().size(), T.links().size());
  for (const Link &Lk : T.links()) {
    auto Found = Parsed.linkFrom(Lk.Src, Lk.SrcPort);
    ASSERT_TRUE(Found.has_value());
    EXPECT_EQ(Found->Dst, Lk.Dst);
    EXPECT_EQ(Found->DstPort, Lk.DstPort);
  }
}

TEST(TopologyTest, DotRejectsMalformed) {
  Topology Out;
  std::string Error;
  EXPECT_FALSE(Topology::fromDot("graph { }", Out, Error));
  EXPECT_FALSE(Topology::fromDot("digraph {", Out, Error));
  EXPECT_FALSE(
      Topology::fromDot("digraph { s1 -> s2; }", Out, Error));
}

//===----------------------------------------------------------------------===//
// Scenario-registry families: ring, grid/torus, random connected
//===----------------------------------------------------------------------===//

TEST(TopologyTest, RingWiresACycle) {
  RingLayout L;
  Topology T = makeRing(5, L);
  EXPECT_EQ(T.numSwitches(), 5u);
  EXPECT_EQ(T.links().size(), 10u); // One cable per edge, both directions.
  for (SwitchId S = 1; S <= 5; ++S) {
    ASSERT_TRUE(T.linkFrom(S, 1).has_value());
    EXPECT_EQ(T.linkFrom(S, 1)->Dst, L.next(S));
    ASSERT_TRUE(T.linkFrom(S, 2).has_value());
    EXPECT_EQ(T.linkFrom(S, 2)->Dst, L.prev(S));
  }
  EXPECT_EQ(L.next(5), 1u);
  EXPECT_EQ(L.prev(1), 5u);
}

TEST(TopologyTest, GridMeshHasNoWrapLinks) {
  GridLayout L;
  Topology T = makeGrid(2, 3, /*Torus=*/false, L);
  EXPECT_EQ(T.numSwitches(), 6u);
  // 2 rows x 2 horizontal cables + 3 vertical cables = 7 cables.
  EXPECT_EQ(T.links().size(), 14u);
  EXPECT_EQ(T.linkFrom(L.at(0, 0), GridLayout::East)->Dst, L.at(0, 1));
  EXPECT_EQ(T.linkFrom(L.at(0, 0), GridLayout::South)->Dst, L.at(1, 0));
  // No westward wrap out of column 0, no northward wrap out of row 0.
  EXPECT_FALSE(T.linkFrom(L.at(0, 0), GridLayout::West).has_value());
  EXPECT_FALSE(T.linkFrom(L.at(0, 0), GridLayout::North).has_value());
}

TEST(TopologyTest, TorusWrapsBothDimensions) {
  GridLayout L;
  Topology T = makeGrid(3, 3, /*Torus=*/true, L);
  // Every switch has degree 4 on a 3x3 torus.
  for (SwitchId S = 1; S <= 9; ++S)
    EXPECT_EQ(T.degree(S), 4u) << "switch " << S;
  EXPECT_EQ(T.linkFrom(L.at(0, 2), GridLayout::East)->Dst, L.at(0, 0));
  EXPECT_EQ(T.linkFrom(L.at(2, 0), GridLayout::South)->Dst, L.at(0, 0));
}

TEST(TopologyTest, TwoWideTorusSkipsDuplicateWrap) {
  // Wrap links on a length-2 dimension would duplicate existing cables;
  // the generator must skip them rather than abort on the collision.
  GridLayout L;
  Topology T = makeGrid(2, 3, /*Torus=*/true, L);
  EXPECT_EQ(T.linkFrom(L.at(0, 2), GridLayout::East)->Dst, L.at(0, 0));
  EXPECT_FALSE(T.linkFrom(L.at(1, 0), GridLayout::South).has_value());
}

TEST(TopologyTest, RandomConnectedIsConnectedAndDeterministic) {
  for (uint64_t Seed : {1ull, 7ull, 42ull, 0xDEADull}) {
    Topology T = makeRandomConnected(9, 3, Seed);
    EXPECT_EQ(T.numSwitches(), 9u);
    // Spanning tree (8 cables) + up to 3 extras, two links per cable.
    EXPECT_GE(T.links().size(), 16u);
    EXPECT_LE(T.links().size(), 22u);
    // Connectivity: BFS from switch 1 reaches everything.
    std::vector<bool> Seen(10, false);
    Seen[1] = true;
    std::vector<SwitchId> Work = {1};
    while (!Work.empty()) {
      SwitchId Cur = Work.back();
      Work.pop_back();
      for (const Link &Lk : T.links())
        if (Lk.Src == Cur && !Seen[Lk.Dst]) {
          Seen[Lk.Dst] = true;
          Work.push_back(Lk.Dst);
        }
    }
    for (SwitchId S = 1; S <= 9; ++S)
      EXPECT_TRUE(Seen[S]) << "seed " << Seed << " switch " << S;

    // Same seed, same wiring.
    Topology Again = makeRandomConnected(9, 3, Seed);
    ASSERT_EQ(Again.links().size(), T.links().size());
    for (std::size_t I = 0; I < T.links().size(); ++I) {
      EXPECT_EQ(Again.links()[I].Src, T.links()[I].Src);
      EXPECT_EQ(Again.links()[I].SrcPort, T.links()[I].SrcPort);
      EXPECT_EQ(Again.links()[I].Dst, T.links()[I].Dst);
    }
  }
}
