//===----------------------------------------------------------------------===//
///
/// \file
/// Property tests for the modular-solver arithmetic layer
/// (docs/ARCHITECTURE.md S14): PrimeField axioms against a native
/// __int128 oracle, deterministic certification of the modPrime() table,
/// CRT round trips, rational reconstruction at the Wang bound (success
/// and forced failure), and reproducibility of the unlucky-prime signal.
/// Randomized suites print their seed so any failure replays exactly.
///
//===----------------------------------------------------------------------===//

#include "support/ModArith.h"

#include "support/BigInt.h"
#include "support/Rational.h"

#include <gtest/gtest.h>

#include <cstdint>
#include <random>
#include <vector>

using mcnk::BigInt;
using mcnk::crtLift;
using mcnk::isPrimeU64;
using mcnk::isqrtBigInt;
using mcnk::modPrime;
using mcnk::ModPrimeCeiling;
using mcnk::PrimeField;
using mcnk::Rational;
using mcnk::rationalMod;
using mcnk::rationalReconstruct;

namespace {

/// Native oracle: (A * B) mod P without Montgomery machinery.
uint64_t mulRef(uint64_t A, uint64_t B, uint64_t P) {
  return static_cast<uint64_t>(static_cast<unsigned __int128>(A) * B % P);
}

uint64_t powRef(uint64_t Base, uint64_t Exp, uint64_t P) {
  uint64_t Result = 1 % P;
  Base %= P;
  for (; Exp; Exp >>= 1) {
    if (Exp & 1)
      Result = mulRef(Result, Base, P);
    Base = mulRef(Base, Base, P);
  }
  return Result;
}

} // namespace

TEST(ModArithTest, IsPrimeU64KnownValues) {
  EXPECT_FALSE(isPrimeU64(0));
  EXPECT_FALSE(isPrimeU64(1));
  EXPECT_TRUE(isPrimeU64(2));
  EXPECT_TRUE(isPrimeU64(3));
  EXPECT_FALSE(isPrimeU64(4));
  EXPECT_TRUE(isPrimeU64(97));
  EXPECT_FALSE(isPrimeU64(561));        // Carmichael number.
  EXPECT_FALSE(isPrimeU64(3215031751)); // Strong pseudoprime to {2,3,5,7}.
  EXPECT_TRUE(isPrimeU64((uint64_t(1) << 61) - 1)); // Mersenne prime M61.
  EXPECT_FALSE(isPrimeU64((uint64_t(1) << 62) - 1));
  EXPECT_TRUE(isPrimeU64(18446744073709551557ull)); // Largest 64-bit prime.
}

TEST(ModArithTest, PrimeTableIsCertifiedDescendingAndStable) {
  // Certify the first entries independently of the table's own MR calls,
  // and pin the head so a table-order regression is caught immediately:
  // the retry sequence of every modular solve depends on this order.
  std::vector<uint64_t> Table;
  for (size_t I = 0; I < 32; ++I)
    Table.push_back(modPrime(I));
  for (size_t I = 0; I < Table.size(); ++I) {
    EXPECT_TRUE(isPrimeU64(Table[I])) << "index " << I;
    EXPECT_LT(Table[I], ModPrimeCeiling);
    EXPECT_TRUE(Table[I] & 1);
    if (I > 0) {
      EXPECT_LT(Table[I], Table[I - 1]) << "table must descend";
    }
  }
  // No prime skipped: every odd value between consecutive entries is
  // composite.
  for (size_t I = 1; I < 8; ++I)
    for (uint64_t C = Table[I - 1] - 2; C > Table[I]; C -= 2)
      EXPECT_FALSE(isPrimeU64(C)) << C;
  // Re-reading must reproduce the same values (lazy extension is stable).
  for (size_t I = 0; I < Table.size(); ++I)
    EXPECT_EQ(modPrime(I), Table[I]);
}

TEST(ModArithTest, FieldAxiomsAgainstInt128Oracle) {
  const unsigned Seed = 0xA7C5;
  SCOPED_TRACE(::testing::Message() << "seed " << Seed);
  std::mt19937_64 Rng(Seed);
  for (size_t PI = 0; PI < 4; ++PI) {
    const uint64_t P = modPrime(PI);
    PrimeField F(P);
    std::uniform_int_distribution<uint64_t> Dist(0, P - 1);
    EXPECT_EQ(F.prime(), P);
    EXPECT_EQ(F.decode(F.zero()), 0u);
    EXPECT_EQ(F.decode(F.one()), 1u);
    for (int Round = 0; Round < 200; ++Round) {
      uint64_t X = Dist(Rng), Y = Dist(Rng);
      uint64_t A = F.encode(X), B = F.encode(Y);
      // encode/decode round trip.
      EXPECT_EQ(F.decode(A), X);
      // Ring operations match the native oracle.
      EXPECT_EQ(F.decode(F.add(A, B)), (X + Y) % P);
      EXPECT_EQ(F.decode(F.sub(A, B)), (X + P - Y) % P);
      EXPECT_EQ(F.decode(F.neg(A)), X == 0 ? 0 : P - X);
      EXPECT_EQ(F.decode(F.mul(A, B)), mulRef(X, Y, P));
      EXPECT_EQ(F.decode(F.pow(A, Round)), powRef(X, Round, P));
      // Identities and inverses.
      EXPECT_EQ(F.add(A, F.zero()), A);
      EXPECT_EQ(F.mul(A, F.one()), A);
      EXPECT_EQ(F.add(A, F.neg(A)), F.zero());
      if (X != 0) {
        EXPECT_EQ(F.mul(A, F.inv(A)), F.one());
        // Fermat: a^(p-1) = 1.
        EXPECT_EQ(F.pow(A, P - 1), F.one());
      }
    }
  }
}

TEST(ModArithTest, RationalModMatchesDefinition) {
  PrimeField F(modPrime(0));
  const uint64_t P = F.prime();
  uint64_t R = 0;
  ASSERT_TRUE(rationalMod(Rational(0), F, R));
  EXPECT_EQ(R, 0u);
  ASSERT_TRUE(rationalMod(Rational(7), F, R));
  EXPECT_EQ(R, 7u);
  ASSERT_TRUE(rationalMod(Rational(-1), F, R));
  EXPECT_EQ(R, P - 1);
  // 1/2 mod p satisfies 2 * r = 1 (mod p).
  ASSERT_TRUE(rationalMod(Rational(1, 2), F, R));
  EXPECT_EQ(mulRef(R, 2, P), 1u);
  ASSERT_TRUE(rationalMod(Rational(-3, 8), F, R));
  EXPECT_EQ(mulRef(R, 8, P), P - 3);
  // A wide numerator still reduces correctly: (2^100) mod p.
  Rational Wide(BigInt(1).shl(100), BigInt(1));
  ASSERT_TRUE(rationalMod(Wide, F, R));
  EXPECT_EQ(R, powRef(2, 100, P));
}

TEST(ModArithTest, UnluckyPrimeSignalIsDeterministic) {
  // A denominator divisible by the first table prime must report unlucky
  // under that prime and succeed under the next — the retry path every
  // modular solve takes, replayed here from a fixed table position.
  const uint64_t P0 = modPrime(0);
  ASSERT_LE(P0, uint64_t(INT64_MAX));
  Rational Poison(1, static_cast<int64_t>(P0));
  uint64_t R = 0;
  for (int Attempt = 0; Attempt < 3; ++Attempt)
    EXPECT_FALSE(rationalMod(Poison, PrimeField(P0), R)) << Attempt;
  PrimeField F1(modPrime(1));
  ASSERT_TRUE(rationalMod(Poison, F1, R));
  EXPECT_EQ(mulRef(R, P0 % F1.prime(), F1.prime()), 1u);
}

TEST(ModArithTest, IsqrtBigInt) {
  EXPECT_EQ(isqrtBigInt(BigInt(0)), BigInt(0));
  EXPECT_EQ(isqrtBigInt(BigInt(1)), BigInt(1));
  EXPECT_EQ(isqrtBigInt(BigInt(3)), BigInt(1));
  EXPECT_EQ(isqrtBigInt(BigInt(4)), BigInt(2));
  EXPECT_EQ(isqrtBigInt(BigInt(99)), BigInt(9));
  EXPECT_EQ(isqrtBigInt(BigInt(100)), BigInt(10));
  // Perfect squares and their neighbours at multi-limb widths.
  for (unsigned Bits : {40u, 63u, 64u, 65u, 100u, 150u}) {
    BigInt Root = BigInt(1).shl(Bits) + BigInt(12345);
    BigInt Square = Root * Root;
    EXPECT_EQ(isqrtBigInt(Square), Root) << Bits;
    EXPECT_EQ(isqrtBigInt(Square - BigInt(1)), Root - BigInt(1)) << Bits;
    EXPECT_EQ(isqrtBigInt(Square + BigInt(1)), Root) << Bits;
  }
}

TEST(ModArithTest, CrtLiftRoundTrip) {
  const unsigned Seed = 0xC47;
  SCOPED_TRACE(::testing::Message() << "seed " << Seed);
  std::mt19937_64 Rng(Seed);
  for (int Round = 0; Round < 20; ++Round) {
    // A random non-negative value below the product of the first few
    // primes must be recovered exactly from its residues.
    const size_t NumPrimes = 1 + Round % 5;
    BigInt Target;
    for (size_t I = 0; I < NumPrimes; ++I)
      Target = Target.shl(61) + BigInt::fromUnsigned(Rng() >> 3);
    BigInt X(0), M(1);
    for (size_t I = 0; I < NumPrimes; ++I) {
      PrimeField F(modPrime(I));
      uint64_t Residue = Target.modU64(F.prime());
      uint64_t InvMMont = F.inv(F.encode(M.modU64(F.prime())));
      X = crtLift(X, M, F, Residue, InvMMont);
      M = M * BigInt::fromUnsigned(F.prime());
      // Invariant after each step: X = Target mod M, within [0, M).
      EXPECT_EQ(X.modU64(modPrime(I)), Target.modU64(modPrime(I)));
      EXPECT_FALSE(X.isNegative());
      EXPECT_TRUE(X < M);
    }
    if (Target < M) {
      EXPECT_EQ(X, Target);
    }
  }
}

TEST(ModArithTest, RationalReconstructionAtWangBound) {
  const unsigned Seed = 0x9E37;
  SCOPED_TRACE(::testing::Message() << "seed " << Seed);
  std::mt19937_64 Rng(Seed);
  // Build the modulus from the first 4 solver primes (~248 bits).
  BigInt M(1);
  for (size_t I = 0; I < 4; ++I)
    M = M * BigInt::fromUnsigned(modPrime(I));
  const BigInt Bound = isqrtBigInt((M - BigInt(1)) / BigInt(2));

  for (int Round = 0; Round < 50; ++Round) {
    // Random N/D within the Wang bound; reconstruction from N * D^{-1}
    // (mod M) must return exactly N/D.
    int64_t N = static_cast<int64_t>(Rng() >> 2) * (Round % 2 ? 1 : -1);
    int64_t D = static_cast<int64_t>(Rng() >> 2) | 1;
    Rational Value(N, D);
    // Residue X = N * D^{-1} mod M via CRT over the component primes.
    BigInt X(0), Partial(1);
    bool Unlucky = false;
    for (size_t I = 0; I < 4; ++I) {
      PrimeField F(modPrime(I));
      uint64_t R = 0;
      if (!rationalMod(Value, F, R)) {
        Unlucky = true;
        break;
      }
      X = crtLift(X, Partial, F, R,
                  F.inv(F.encode(Partial.modU64(F.prime()))));
      Partial = Partial * BigInt::fromUnsigned(F.prime());
    }
    ASSERT_FALSE(Unlucky);
    Rational Out;
    ASSERT_TRUE(rationalReconstruct(X, M, Bound, Out)) << Round;
    EXPECT_EQ(Out, Value) << Round;
  }
}

TEST(ModArithTest, RationalReconstructionBeyondBoundNeverReturnsTarget) {
  // With a modulus of a single prime, a fraction whose numerator and
  // denominator both exceed sqrt(M/2) lies outside the Wang bound.
  // Reconstruction may still *succeed* with a different (small) fraction
  // that happens to be congruent to the same residue — which is exactly
  // why the solver verifies every reconstruction against fresh primes
  // instead of trusting it — but it can never return the target itself.
  const uint64_t P = modPrime(0);
  PrimeField F(P);
  BigInt M = BigInt::fromUnsigned(P);
  BigInt Bound = isqrtBigInt((M - BigInt(1)) / BigInt(2));
  // N and D both near 2^40 > sqrt(2^62 / 2) = 2^30.5.
  Rational Wide((int64_t(1) << 40) + 7, (int64_t(1) << 40) + 9);
  uint64_t R = 0;
  ASSERT_TRUE(rationalMod(Wide, F, R));
  Rational Out;
  if (rationalReconstruct(BigInt::fromUnsigned(R), M, Bound, Out)) {
    EXPECT_NE(Out, Wide);
    EXPECT_TRUE(Out.numerator().abs() <= Bound);
    EXPECT_TRUE(Out.denominator() <= Bound);
  }

  // The same fraction reconstructs exactly once the modulus is wide
  // enough (two primes put sqrt(M/2) near 2^61, far above 2^40).
  BigInt M2 = M * BigInt::fromUnsigned(modPrime(1));
  PrimeField F1(modPrime(1));
  uint64_t R1 = 0;
  ASSERT_TRUE(rationalMod(Wide, F1, R1));
  BigInt X = crtLift(BigInt::fromUnsigned(R), M, F1, R1,
                     F1.inv(F1.encode(M.modU64(F1.prime()))));
  BigInt Bound2 = isqrtBigInt((M2 - BigInt(1)) / BigInt(2));
  ASSERT_TRUE(rationalReconstruct(X, M2, Bound2, Out));
  EXPECT_EQ(Out, Wide);
}

TEST(ModArithTest, RationalReconstructionReportsFailure) {
  // Exhaustive check over a tiny modulus: with M = 101 and Bound = 7 the
  // admissible fractions cover only part of Z/M, so some residues must
  // fail — and every success must actually satisfy N = X * D (mod M)
  // within the bound. This pins the failure signal the solver's
  // accumulate-more-primes loop is built on.
  const int64_t MVal = 101;
  BigInt M(MVal);
  BigInt Bound = isqrtBigInt((M - BigInt(1)) / BigInt(2)); // 7
  ASSERT_EQ(Bound, BigInt(7));
  int Failures = 0;
  for (int64_t XV = 0; XV < MVal; ++XV) {
    Rational Out;
    if (!rationalReconstruct(BigInt(XV), M, Bound, Out)) {
      ++Failures;
      continue;
    }
    ASSERT_TRUE(Out.numerator().fitsInt64());
    ASSERT_TRUE(Out.denominator().fitsInt64());
    int64_t N = Out.numerator().toInt64();
    int64_t D = Out.denominator().toInt64();
    EXPECT_LE(std::abs(N), 7);
    EXPECT_GE(D, 1);
    EXPECT_LE(D, 7);
    // N = X * D (mod M).
    EXPECT_EQ(((N - XV * D) % MVal + MVal) % MVal, 0) << XV;
  }
  EXPECT_GT(Failures, 0);
}
