//===----------------------------------------------------------------------===//
///
/// \file
/// Routing/model-synthesis tests. The §2 running example is checked
/// against every number the paper reports (teleport equivalences,
/// 1-resilience, the 80%/96% delivery probabilities, refinement chain);
/// FatTree models are checked for delivery, failure response, resilience
/// (the Fig 11b pattern at p=4), and hop-count behavior; the chain model
/// against its closed form (1 - pfail/2)^K.
///
//===----------------------------------------------------------------------===//

#include "analysis/Verifier.h"
#include "ast/Traversal.h"
#include "routing/Routing.h"

#include <gtest/gtest.h>

using namespace mcnk;
using namespace mcnk::routing;
using analysis::Verifier;
using ast::Context;

//===----------------------------------------------------------------------===//
// §2 running example
//===----------------------------------------------------------------------===//

struct TriangleTest : ::testing::Test {
  Context Ctx;
  TriangleExample Ex = buildTriangleExample(Ctx);
  Verifier V;

  fdd::FddRef compile(const ast::Node *P) { return V.compile(P); }
};

TEST_F(TriangleTest, ProgramsAreGuarded) {
  EXPECT_TRUE(ast::isGuarded(Ex.NaiveF2));
  EXPECT_TRUE(ast::isGuarded(Ex.ResilientF2));
  EXPECT_TRUE(ast::isGuarded(Ex.Teleport));
}

TEST_F(TriangleTest, NoFailuresBothSchemesTeleport) {
  // M̂(p, t̂, f0) ≡ M̂(p̂, t̂, f0) ≡ in ; sw:=2 ; pt:=2.
  fdd::FddRef Tele = compile(Ex.Teleport);
  EXPECT_TRUE(V.equivalent(compile(Ex.NaiveF0), Tele));
  EXPECT_TRUE(V.equivalent(compile(Ex.ResilientF0), Tele));
}

TEST_F(TriangleTest, ResilientIsOneResilient) {
  // M̂(p̂, t̂, f1) ≡ teleport but M̂(p, t̂, f1) is not (§2).
  fdd::FddRef Tele = compile(Ex.Teleport);
  EXPECT_TRUE(V.equivalent(compile(Ex.ResilientF1), Tele));
  EXPECT_FALSE(V.equivalent(compile(Ex.NaiveF1), Tele));
}

TEST_F(TriangleTest, DeliveryProbabilitiesMatchPaper) {
  // "80% for the naive scheme and 96% for the resilient scheme" under f2.
  Packet In = Ex.ingressPacket(Ctx);
  EXPECT_EQ(V.deliveryProbability(compile(Ex.NaiveF2), In),
            Rational(4, 5));
  EXPECT_EQ(V.deliveryProbability(compile(Ex.ResilientF2), In),
            Rational(24, 25));
}

TEST_F(TriangleTest, RefinementChainUnderF2) {
  // M̂(p, t̂, f2) < M̂(p̂, t̂, f2) < teleport (§2).
  fdd::FddRef Naive = compile(Ex.NaiveF2);
  fdd::FddRef Resilient = compile(Ex.ResilientF2);
  fdd::FddRef Tele = compile(Ex.Teleport);
  EXPECT_TRUE(V.strictlyRefines(Naive, Resilient));
  EXPECT_TRUE(V.strictlyRefines(Resilient, Tele));
  EXPECT_FALSE(V.refines(Resilient, Naive));
  // drop < everything.
  EXPECT_TRUE(V.strictlyRefines(V.compile(Ctx.drop()), Naive));
}

TEST_F(TriangleTest, NaiveUnderF1DeliversThreeQuarters) {
  // f1: no failure w.p. 1/2, up2 down w.p. 1/4 (lost), up3 down w.p. 1/4
  // (harmless for the naive path). Delivery = 3/4.
  Packet In = Ex.ingressPacket(Ctx);
  EXPECT_EQ(V.deliveryProbability(compile(Ex.NaiveF1), In),
            Rational(3, 4));
}

//===----------------------------------------------------------------------===//
// Synthesis helpers
//===----------------------------------------------------------------------===//

TEST(SamplerTest, BoundedFailureEnumeration) {
  // f_k with two flags, k=1, pr=1/3 reproduces §2's f1 weights
  // (1/2, 1/4, 1/4).
  Context Ctx;
  FieldId A = Ctx.field("up2"), B = Ctx.field("up3");
  const ast::Node *F = sampleFlags(Ctx, {A, B}, Rational(1, 3), 1);
  Verifier V;
  fdd::FddRef Ref = V.compile(F);
  Packet In(2);
  auto Out = V.manager().outputDistribution(Ref, In);
  Packet BothUp(2);
  BothUp.set(A, 1);
  BothUp.set(B, 1);
  EXPECT_EQ(Out.Outputs[BothUp], Rational(1, 2));
  EXPECT_EQ(Out.Outputs[BothUp.with(A, 0)], Rational(1, 4));
  EXPECT_EQ(Out.Outputs[BothUp.with(B, 0)], Rational(1, 4));
  // The double-failure pattern is excluded by the bound.
  Packet BothDown(2);
  EXPECT_EQ(Out.Outputs.count(BothDown), 0u);
}

TEST(SamplerTest, UnboundedIsIndependent) {
  Context Ctx;
  FieldId A = Ctx.field("u1"), B = Ctx.field("u2");
  const ast::Node *F =
      sampleFlags(Ctx, {A, B}, Rational(1, 5), FailureModel::Unbounded);
  Verifier V;
  fdd::FddRef Ref = V.compile(F);
  auto Out = V.manager().outputDistribution(Ref, Packet(2));
  Packet UpUp(2);
  UpUp.set(A, 1);
  UpUp.set(B, 1);
  EXPECT_EQ(Out.Outputs[UpUp], Rational(16, 25));
  EXPECT_EQ(Out.Outputs[Packet(2)], Rational(1, 25)); // Both down.
}

TEST(SamplerTest, HopIncrementSaturates) {
  Context Ctx;
  FieldId Hop = Ctx.field("hop");
  const ast::Node *Inc = hopIncrement(Ctx, Hop, 3);
  Verifier V;
  fdd::FddRef Ref = V.compile(Inc);
  for (FieldValue Start : {0u, 1u, 2u, 3u, 9u}) {
    Packet In(1);
    In.set(Hop, Start);
    auto Out = V.manager().outputDistribution(Ref, In);
    FieldValue Expected = Start >= 3 ? 3u : Start + 1;
    Packet Want(1);
    Want.set(Hop, Expected);
    EXPECT_EQ(Out.Outputs[Want], Rational(1)) << "start " << Start;
  }
}

//===----------------------------------------------------------------------===//
// FatTree models
//===----------------------------------------------------------------------===//

namespace {

struct FatTreeCase {
  Scheme S;
  bool AB;
  unsigned MaxFail; // Per-hop bound k.
  bool ExpectTeleport;
};

} // namespace

class FatTreeResilience : public ::testing::TestWithParam<FatTreeCase> {};

TEST_P(FatTreeResilience, MatchesFigure11b) {
  const FatTreeCase &C = GetParam();
  Context Ctx;
  topology::FatTreeLayout L;
  if (C.AB)
    topology::makeAbFatTree(4, L);
  else
    topology::makeFatTree(4, L);

  ModelOptions O;
  O.RoutingScheme = C.S;
  O.Failures = C.MaxFail == 0
                   ? FailureModel::none()
                   : FailureModel::bounded(Rational(1, 100), C.MaxFail);
  NetworkModel M = buildFatTreeModel(L, O, Ctx);

  Verifier V;
  fdd::FddRef Model = V.compile(M.Program);
  fdd::FddRef Tele = V.compile(M.Teleport);
  EXPECT_EQ(V.equivalent(Model, Tele), C.ExpectTeleport);
  // Regardless, the model refines its spec.
  EXPECT_TRUE(V.refines(Model, Tele));
}

INSTANTIATE_TEST_SUITE_P(
    Fig11b, FatTreeResilience,
    ::testing::Values(
        // k = 0: every scheme teleports.
        FatTreeCase{Scheme::F100, true, 0, true},
        FatTreeCase{Scheme::F103, true, 0, true},
        FatTreeCase{Scheme::F1035, true, 0, true},
        // k = 1: F100 already fails; the rerouting schemes hold.
        FatTreeCase{Scheme::F100, true, 1, false},
        FatTreeCase{Scheme::F103, true, 1, true},
        FatTreeCase{Scheme::F1035, true, 1, true},
        // k = 2: F103 still holds (one opposite-type agg survives).
        FatTreeCase{Scheme::F103, true, 2, true},
        FatTreeCase{Scheme::F1035, true, 2, true},
        // k = 3: F103 breaks, F1035 survives via the 5-hop detour.
        FatTreeCase{Scheme::F103, true, 3, false},
        FatTreeCase{Scheme::F1035, true, 3, true},
        // k = 4: even F1035 fails.
        FatTreeCase{Scheme::F1035, true, 4, false}));

TEST(FatTreeModelTest, NoFailureDeliveryIsCertain) {
  Context Ctx;
  topology::FatTreeLayout L;
  topology::makeAbFatTree(4, L);
  ModelOptions O;
  O.RoutingScheme = Scheme::F100;
  NetworkModel M = buildFatTreeModel(L, O, Ctx);
  Verifier V;
  fdd::FddRef Model = V.compile(M.Program);
  for (std::size_t I = 0; I < M.Ingresses.size(); ++I)
    EXPECT_EQ(V.deliveryProbability(Model, M.ingressPacket(I, Ctx)),
              Rational(1));
  EXPECT_EQ(M.Ingresses.size(), 7u); // 8 edges minus the destination.
}

TEST(FatTreeModelTest, RefinementChainUnderUnboundedFailures) {
  // Fig 11(c) k=∞ column: F100 < F103 < F1035 < teleport.
  Context Ctx;
  topology::FatTreeLayout L;
  topology::makeAbFatTree(4, L);
  FailureModel F = FailureModel::iid(Rational(1, 10));

  auto Build = [&](Scheme S) {
    ModelOptions O;
    O.RoutingScheme = S;
    O.Failures = F;
    return buildFatTreeModel(L, O, Ctx);
  };
  NetworkModel M100 = Build(Scheme::F100);
  NetworkModel M103 = Build(Scheme::F103);
  NetworkModel M1035 = Build(Scheme::F1035);

  Verifier V;
  fdd::FddRef R100 = V.compile(M100.Program);
  fdd::FddRef R103 = V.compile(M103.Program);
  fdd::FddRef R1035 = V.compile(M1035.Program);
  fdd::FddRef Tele = V.compile(M100.Teleport);

  EXPECT_TRUE(V.strictlyRefines(R100, R103));
  EXPECT_TRUE(V.strictlyRefines(R103, R1035));
  EXPECT_TRUE(V.strictlyRefines(R1035, Tele));

  // Delivery probabilities are strictly ordered on inter-pod traffic
  // (intra-pod traffic never crosses a core, where the schemes differ
  // most; with per-hop resampling the rerouting schemes deliver intra-pod
  // traffic with probability one).
  Packet In = M100.ingressPacket(2, Ctx);
  Packet IntraPod = M100.ingressPacket(0, Ctx);
  EXPECT_EQ(V.deliveryProbability(R103, IntraPod), Rational(1));
  Rational D100 = V.deliveryProbability(R100, In);
  Rational D103 = V.deliveryProbability(R103, In);
  Rational D1035 = V.deliveryProbability(R1035, In);
  EXPECT_LT(D100, D103);
  EXPECT_LT(D103, D1035);
  EXPECT_LT(D1035, Rational(1));
  EXPECT_GT(D100, Rational(1, 2));
}

TEST(FatTreeModelTest, HopCountsReflectDetours) {
  Context Ctx;
  topology::FatTreeLayout L;
  topology::makeAbFatTree(4, L);
  ModelOptions O;
  O.RoutingScheme = Scheme::F100;
  O.CountHops = true;
  O.HopCap = 10;
  NetworkModel M = buildFatTreeModel(L, O, Ctx);
  Verifier V(markov::SolverKind::Direct);
  fdd::FddRef Model = V.compile(M.Program);

  std::vector<Packet> Ingresses;
  for (std::size_t I = 0; I < M.Ingresses.size(); ++I)
    Ingresses.push_back(M.ingressPacket(I, Ctx));
  analysis::HopStats Stats = V.hopStats(Model, Ingresses, M.HopField);

  // Without failures everything is delivered; intra-pod traffic takes 2
  // hops (edge-agg-edge), inter-pod 4 (edge-agg-core-agg-edge).
  EXPECT_NEAR(Stats.Delivered.toDouble(), 1.0, 1e-9);
  EXPECT_NEAR(Stats.Histogram[2].toDouble(), 1.0 / 7.0, 1e-9);
  EXPECT_NEAR(Stats.Histogram[4].toDouble(), 6.0 / 7.0, 1e-9);
  EXPECT_NEAR(Stats.expectedGivenDelivered(), (2.0 + 6 * 4.0) / 7.0, 1e-9);
  // The CDF is monotone and total.
  EXPECT_LE(Stats.cumulative(2), Stats.cumulative(4));
  EXPECT_EQ(Stats.cumulative(10), Stats.Delivered);
}

TEST(FatTreeModelTest, StandardFatTreeLacksThreeHopDetour) {
  // On a standard FatTree the F103 core fallback has no opposite-type
  // pods, so under core failures it behaves like F100 at the core.
  Context Ctx1, Ctx2;
  topology::FatTreeLayout LStd, LAb;
  topology::makeFatTree(4, LStd);
  topology::makeAbFatTree(4, LAb);
  ModelOptions O;
  O.RoutingScheme = Scheme::F103;
  O.Failures = FailureModel::iid(Rational(1, 4));

  NetworkModel MStd = buildFatTreeModel(LStd, O, Ctx1);
  NetworkModel MAb = buildFatTreeModel(LAb, O, Ctx2);
  Verifier V1, V2;
  // Index 2 is an inter-pod ingress (pod 1); intra-pod paths skip cores.
  Rational DStd = V1.deliveryProbability(V1.compile(MStd.Program),
                                         MStd.ingressPacket(2, Ctx1));
  Rational DAb = V2.deliveryProbability(V2.compile(MAb.Program),
                                        MAb.ingressPacket(2, Ctx2));
  EXPECT_LT(DStd, DAb);
}

//===----------------------------------------------------------------------===//
// Chain model
//===----------------------------------------------------------------------===//

class ChainParam : public ::testing::TestWithParam<unsigned> {};

TEST_P(ChainParam, DeliveryMatchesClosedForm) {
  unsigned K = GetParam();
  Context Ctx;
  topology::ChainLayout L;
  topology::makeChain(K, L);
  Rational PFail(1, 1000);
  NetworkModel M = buildChainModel(L, PFail, Ctx);
  ASSERT_TRUE(ast::isGuarded(M.Program));

  Verifier V;
  fdd::FddRef Model = V.compile(M.Program);
  Packet In = M.ingressPacket(0, Ctx);
  // Per diamond: 1/2 + 1/2·(1 - pfail) = 1 - pfail/2.
  Rational PerDiamond = Rational(1) - PFail / Rational(2);
  Rational Expected(1);
  for (unsigned I = 0; I < K; ++I)
    Expected *= PerDiamond;
  EXPECT_EQ(V.deliveryProbability(Model, In), Expected);
  // Never equivalent to teleport (pfail > 0), but refines it.
  fdd::FddRef Tele = V.compile(M.Teleport);
  EXPECT_FALSE(V.equivalent(Model, Tele));
  EXPECT_TRUE(V.strictlyRefines(Model, Tele));
}

INSTANTIATE_TEST_SUITE_P(Ks, ChainParam, ::testing::Values(1u, 2u, 5u, 16u));

//===----------------------------------------------------------------------===//
// Generic shortest-path model (scenario-registry families)
//===----------------------------------------------------------------------===//

TEST(ShortestPathModelTest, FailureFreeRingAlwaysDelivers) {
  Context Ctx;
  topology::RingLayout L;
  topology::Topology T = topology::makeRing(6, L);
  ModelOptions O;
  NetworkModel M = buildShortestPathModel(T, /*Dst=*/1, O, Ctx);
  ASSERT_TRUE(ast::isGuarded(M.Program));
  ASSERT_EQ(M.Ingresses.size(), 5u);

  Verifier V;
  fdd::FddRef Model = V.compile(M.Program);
  for (std::size_t I = 0; I < M.Ingresses.size(); ++I)
    EXPECT_TRUE(
        V.deliveryProbability(Model, M.ingressPacket(I, Ctx)).isOne())
        << "ingress " << I;
  // With no failures the model is its own specification.
  fdd::FddRef Tele = V.compile(M.Teleport);
  EXPECT_TRUE(V.equivalent(Model, Tele));
}

TEST(ShortestPathModelTest, RingFailuresMatchPathLengths) {
  // On a ring with iid per-link failures, a packet at BFS distance d has
  // exactly one candidate port per hop when d < N/2... except at the
  // antipode where two equal-length paths exist. For N=4, switch 3 is the
  // antipode (distance 2, two disjoint paths); switches 2 and 4 are at
  // distance 1. Delivery from distance 1: (1-p). From the antipode the
  // packet picks one of the two directions uniformly after sampling both
  // flags; each route then needs its second hop too.
  Context Ctx;
  topology::RingLayout L;
  topology::Topology T = topology::makeRing(4, L);
  ModelOptions O;
  Rational P(1, 10);
  O.Failures = FailureModel::iid(P);
  NetworkModel M = buildShortestPathModel(T, 1, O, Ctx);

  Verifier V;
  fdd::FddRef Model = V.compile(M.Program);
  Rational Up = Rational(1) - P;
  // Distance-1 switches (2 and 4): deliver iff the single candidate link
  // is up.
  EXPECT_EQ(V.deliveryProbability(Model, M.ingressPacket(0, Ctx)), Up);
  EXPECT_EQ(V.deliveryProbability(Model, M.ingressPacket(2, Ctx)), Up);
  // The antipode (switch 3): both flags sampled; if both up pick either
  // (then one more up-hop), one up -> that one, none -> drop.
  Rational Both = Up * Up, One = Up * P;
  Rational Expected = (Both + One + One) * Up;
  EXPECT_EQ(V.deliveryProbability(Model, M.ingressPacket(1, Ctx)),
            Expected);
}

TEST(ShortestPathModelTest, HopCountsOnGridMatchBfsDistance) {
  // Failure-free dimension counting: every delivered packet's hop field
  // must equal its ingress's BFS distance to the destination.
  Context Ctx;
  topology::GridLayout L;
  topology::Topology T = topology::makeGrid(2, 3, false, L);
  ModelOptions O;
  O.CountHops = true;
  NetworkModel M = buildShortestPathModel(T, 1, O, Ctx);
  ASSERT_NE(M.HopField, FieldTable::NotFound);
  EXPECT_EQ(M.Teleport, nullptr); // Hop outputs match no teleport spec.

  Verifier V;
  fdd::FddRef Model = V.compile(M.Program);
  for (std::size_t I = 0; I < M.Ingresses.size(); ++I) {
    topology::SwitchId S = M.Ingresses[I].first;
    unsigned Row = (S - 1) / 3, Col = (S - 1) % 3;
    unsigned Dist = Row + Col; // Destination is at (0, 0).
    auto HopDist = V.outputFieldDistribution(
        Model, M.ingressPacket(I, Ctx), M.HopField);
    ASSERT_EQ(HopDist.size(), 1u) << "switch " << S;
    EXPECT_EQ(HopDist.begin()->first, Dist) << "switch " << S;
    EXPECT_TRUE(HopDist.begin()->second.isOne()) << "switch " << S;
  }
}

TEST(ShortestPathModelTest, UnreachableSwitchesAreExcluded) {
  // A destination in one component: switches of the other component get
  // no ingress and the model still compiles.
  Context Ctx;
  topology::Topology T(4);
  T.addCable(1, 1, 2, 1);
  T.addCable(3, 1, 4, 1); // Disconnected pair.
  ModelOptions O;
  NetworkModel M = buildShortestPathModel(T, 1, O, Ctx);
  ASSERT_EQ(M.Ingresses.size(), 1u);
  EXPECT_EQ(M.Ingresses[0].first, 2u);
  Verifier V;
  fdd::FddRef Model = V.compile(M.Program);
  EXPECT_TRUE(
      V.deliveryProbability(Model, M.ingressPacket(0, Ctx)).isOne());
}
