# Drives the mcnk_serve restart cycle end to end (ARCHITECTURE S16):
# runs the daemon twice in --stdio mode over one persistent store file.
# The first (cold) run starts from an empty store and must append its
# compiles; the second (warm) run simulates a restart and must load them
# back — nonzero warmed-entry count, a cache hit on the replayed compile,
# and response lines byte-identical to the cold run's.
#
# Usage:
#   cmake -DSERVE=<mcnk_serve> -DWORKDIR=<scratch dir> -P RunServeSmoke.cmake

foreach(var SERVE WORKDIR)
  if(NOT DEFINED ${var})
    message(FATAL_ERROR "RunServeSmoke.cmake: ${var} is required")
  endif()
endforeach()

file(REMOVE_RECURSE ${WORKDIR})
file(MAKE_DIRECTORY ${WORKDIR})
set(store ${WORKDIR}/fdds.store)
set(requests ${WORKDIR}/requests.jsonl)

# The program is large enough to clear the compile cache's minimum-size
# gate, so the compile lands in the store. Delivery from sw=1 is exactly 1.
set(prog "if sw=1 then pt:=2 ; sw:=2 ; hops:=1 else if sw=2 then ((pt:=3 ; sw:=3 ; hops:=2) +[1/2] drop) else drop")
file(WRITE ${requests}
  "{\"verb\":\"compile\",\"program\":\"${prog}\",\"solver\":\"exact\"}\n"
  "{\"verb\":\"query\",\"program\":\"${prog}\",\"query\":\"delivery\",\"inputs\":[{\"sw\":1},{\"sw\":2}]}\n"
  "{\"verb\":\"shutdown\"}\n")

function(run_daemon out_var err_var)
  execute_process(
    COMMAND ${SERVE} --stdio --store ${store}
    INPUT_FILE ${requests}
    OUTPUT_VARIABLE out
    ERROR_VARIABLE err
    RESULT_VARIABLE code)
  if(NOT code EQUAL 0)
    message(FATAL_ERROR
      "mcnk_serve exited ${code}\nstdout:\n${out}\nstderr:\n${err}")
  endif()
  set(${out_var} "${out}" PARENT_SCOPE)
  set(${err_var} "${err}" PARENT_SCOPE)
endfunction()

run_daemon(cold_out cold_err)
run_daemon(warm_out warm_err)

# The cold run opened an empty store...
if(NOT cold_err MATCHES "\\(0 entries warmed\\)")
  message(FATAL_ERROR
    "cold run did not start from an empty store\nstderr:\n${cold_err}")
endif()
# ...the warm run loaded the cold run's compiles back from disk...
if(NOT warm_err MATCHES "\\([1-9][0-9]* entr(y|ies) warmed\\)")
  message(FATAL_ERROR
    "warm run warmed no entries from the store\nstderr:\n${warm_err}")
endif()
# ...both runs answered every request, with the exact delivery answers...
foreach(out IN ITEMS "${cold_out}" "${warm_out}")
  if(NOT out MATCHES "\"results\":\\[\"1\",\"1/2\"\\]")
    message(FATAL_ERROR
      "delivery answers wrong or missing\nstdout:\n${out}")
  endif()
  if(out MATCHES "\"ok\":false")
    message(FATAL_ERROR "a request failed\nstdout:\n${out}")
  endif()
endforeach()
# ...and the restart changed nothing observable.
if(NOT cold_out STREQUAL warm_out)
  message(FATAL_ERROR
    "warm responses differ from cold responses\n"
    "cold:\n${cold_out}\nwarm:\n${warm_out}")
endif()
