# Drives one `mcnk_cli lint` smoke case: runs CLI on FILE, checks the
# exit code against EXPECT_EXIT, and (when EXPECT_SUBSTR is given) that
# stdout contains each ';'-separated substring. EXPECT_SUBSTR uses '@'
# in place of ':' so the pattern survives CMake list/argument quoting
# (lint output is colon-heavy: file:line:col: warning[...]).
#
# Usage:
#   cmake -DCLI=<mcnk_cli> -DFILE=<prog.pnk> -DEXPECT_EXIT=<n>
#         [-DEXPECT_SUBSTR=<s1;s2;...>] -P RunLint.cmake

foreach(var CLI FILE EXPECT_EXIT)
  if(NOT DEFINED ${var})
    message(FATAL_ERROR "RunLint.cmake: ${var} is required")
  endif()
endforeach()

execute_process(
  COMMAND ${CLI} lint ${FILE}
  OUTPUT_VARIABLE out
  ERROR_VARIABLE err
  RESULT_VARIABLE code)

if(NOT code EQUAL EXPECT_EXIT)
  message(FATAL_ERROR
    "lint ${FILE}: exit ${code}, expected ${EXPECT_EXIT}\n"
    "stdout:\n${out}\nstderr:\n${err}")
endif()

if(DEFINED EXPECT_SUBSTR)
  foreach(pattern IN LISTS EXPECT_SUBSTR)
    string(REPLACE "@" ":" pattern "${pattern}")
    string(FIND "${out}" "${pattern}" at)
    if(at EQUAL -1)
      message(FATAL_ERROR
        "lint ${FILE}: stdout lacks '${pattern}'\nstdout:\n${out}")
    endif()
  endforeach()
endif()
