# Golden-output smoke-test driver (invoked by ctest; see CMakeLists.txt):
#
#   cmake -DHARNESS=<exe> -DGOLDEN=<file> [-DENVVARS=A=1;B=2] \
#         -P RunGolden.cmake
#
# Runs HARNESS with the given environment, captures stdout, and fails
# with a side-by-side dump when it differs from the checked-in GOLDEN
# file. Regenerate a golden by re-running the same command line and
# redirecting stdout (the environment is printed on failure).

if(NOT DEFINED HARNESS OR NOT DEFINED GOLDEN)
  message(FATAL_ERROR "RunGolden.cmake needs -DHARNESS= and -DGOLDEN=")
endif()

set(ENV_DESCRIPTION "")
foreach(pair IN LISTS ENVVARS)
  if(pair MATCHES "^([^=]+)=(.*)$")
    set(ENV{${CMAKE_MATCH_1}} "${CMAKE_MATCH_2}")
    string(APPEND ENV_DESCRIPTION "${pair} ")
  endif()
endforeach()

execute_process(
  COMMAND "${HARNESS}"
  OUTPUT_VARIABLE ACTUAL
  RESULT_VARIABLE EXIT_CODE)
if(NOT EXIT_CODE EQUAL 0)
  message(FATAL_ERROR
    "golden harness failed (exit ${EXIT_CODE}): ${ENV_DESCRIPTION}${HARNESS}")
endif()

file(READ "${GOLDEN}" EXPECTED)
if(NOT ACTUAL STREQUAL EXPECTED)
  message(FATAL_ERROR "golden mismatch for ${GOLDEN}\n"
    "--- expected ---\n${EXPECTED}\n"
    "--- actual ---\n${ACTUAL}\n"
    "regenerate with: ${ENV_DESCRIPTION}${HARNESS} > ${GOLDEN}")
endif()
