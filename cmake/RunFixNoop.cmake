# Pins the `mcnk_cli lint --fix` no-op contract: the first --fix on a
# simplifiable program rewrites the file; a second --fix on the now
# already-simplified text must leave the file completely alone — same
# bytes AND same mtime (a truncate-and-rewrite of identical bytes would
# still bump the timestamp and re-trigger anything watching the file).
#
# Usage:
#   cmake -DCLI=<mcnk_cli> -DWORKDIR=<scratch dir> -P RunFixNoop.cmake

foreach(var CLI WORKDIR)
  if(NOT DEFINED ${var})
    message(FATAL_ERROR "RunFixNoop.cmake: ${var} is required")
  endif()
endforeach()

file(REMOVE_RECURSE ${WORKDIR})
file(MAKE_DIRECTORY ${WORKDIR})
set(prog ${WORKDIR}/prog.pnk)
file(WRITE ${prog} "if sw=1 then (skip ; pt:=2) else drop\n")

# First --fix: simplifies (skip ; pt:=2) away, so the file is rewritten.
execute_process(
  COMMAND ${CLI} lint --fix ${prog}
  OUTPUT_VARIABLE out1 ERROR_VARIABLE err1 RESULT_VARIABLE code1)
if(NOT code1 EQUAL 0)
  message(FATAL_ERROR "first --fix exited ${code1}\n${out1}\n${err1}")
endif()
if(NOT err1 MATCHES "fixed: ")
  message(FATAL_ERROR "first --fix did not rewrite\nstderr:\n${err1}")
endif()

file(READ ${prog} bytes_after_fix)
file(TIMESTAMP ${prog} mtime_after_fix "%Y-%m-%dT%H:%M:%S" UTC)
# A filesystem-timestamp tick between the runs would mask a rewrite.
execute_process(COMMAND ${CMAKE_COMMAND} -E sleep 1.1)

# Second --fix: already simplified, must not touch the file.
execute_process(
  COMMAND ${CLI} lint --fix ${prog}
  OUTPUT_VARIABLE out2 ERROR_VARIABLE err2 RESULT_VARIABLE code2)
if(NOT code2 EQUAL 0)
  message(FATAL_ERROR "second --fix exited ${code2}\n${out2}\n${err2}")
endif()
if(NOT err2 MATCHES "unchanged: ")
  message(FATAL_ERROR
    "second --fix did not report a no-op\nstderr:\n${err2}")
endif()

file(READ ${prog} bytes_after_noop)
file(TIMESTAMP ${prog} mtime_after_noop "%Y-%m-%dT%H:%M:%S" UTC)
if(NOT bytes_after_noop STREQUAL bytes_after_fix)
  message(FATAL_ERROR "no-op --fix changed the file's bytes")
endif()
if(NOT mtime_after_noop STREQUAL mtime_after_fix)
  message(FATAL_ERROR
    "no-op --fix bumped the mtime (${mtime_after_fix} -> "
    "${mtime_after_noop}): the file was rewritten")
endif()
