#!/usr/bin/env bash
# CI entry point.
#
# Usage: ./ci.sh [build-dir]        # configure + build + full test suite
#                                   # (the repository's tier-1 verify) in a
#                                   # fresh build directory
#        ./ci.sh bench [build-dir]  # build micro_support + micro_linalg and
#                                   # emit bench/results/BENCH_<name>.json
#                                   # (the recorded performance trajectory)
#   BUILD_TYPE=Debug ./ci.sh        # non-Release build
#   MCNK_SANITIZE=ON ./ci.sh        # ASan/UBSan run
#   MCNK_BENCH_MIN_TIME=2 ./ci.sh bench   # longer per-benchmark runtime
set -euo pipefail

cd "$(dirname "$0")"

MODE=verify
if [ "${1:-}" = "bench" ]; then
  MODE=bench
  shift
fi

BUILD_DIR="${1:-build}"
BUILD_TYPE="${BUILD_TYPE:-Release}"
SANITIZE="${MCNK_SANITIZE:-OFF}"
JOBS="$(nproc 2>/dev/null || sysctl -n hw.ncpu 2>/dev/null || echo 4)"

if [ "$MODE" = "bench" ]; then
  # Bench mode reuses an existing build tree (benchmarks want a warm
  # Release build, not a from-scratch rebuild) — but refuses Debug or
  # sanitized trees so slow-by-10x numbers never land in bench/results/.
  if [ ! -f "$BUILD_DIR/CMakeCache.txt" ]; then
    cmake -B "$BUILD_DIR" -S . \
      -DCMAKE_BUILD_TYPE="$BUILD_TYPE" \
      -DMCNK_WERROR=ON \
      -DMCNK_SANITIZE="$SANITIZE"
  fi
  if ! grep -q '^CMAKE_BUILD_TYPE:STRING=Release$' "$BUILD_DIR/CMakeCache.txt"; then
    echo "error: '$BUILD_DIR' is not a Release build; bench numbers would be meaningless" >&2
    echo "hint: ./ci.sh bench <fresh-dir>  or reconfigure with -DCMAKE_BUILD_TYPE=Release" >&2
    exit 1
  fi
  if grep -q '^MCNK_SANITIZE:BOOL=ON$' "$BUILD_DIR/CMakeCache.txt"; then
    echo "error: '$BUILD_DIR' has sanitizers enabled; refusing to record bench numbers" >&2
    exit 1
  fi
  cmake --build "$BUILD_DIR" -j "$JOBS" --target micro_support micro_linalg
  mkdir -p bench/results
  for bench in micro_support micro_linalg; do
    if [ ! -x "$BUILD_DIR/$bench" ]; then
      echo "error: $bench was not built (is Google Benchmark installed?)" >&2
      exit 1
    fi
    "$BUILD_DIR/$bench" \
      --benchmark_out="bench/results/BENCH_${bench}.json" \
      --benchmark_out_format=json \
      --benchmark_min_time="${MCNK_BENCH_MIN_TIME:-0.2}"
  done
  echo "Wrote bench/results/BENCH_micro_support.json and BENCH_micro_linalg.json"
  exit 0
fi

# Only clobber directories that are clearly CMake build trees.
if [ -e "$BUILD_DIR" ] && [ ! -f "$BUILD_DIR/CMakeCache.txt" ]; then
  echo "error: '$BUILD_DIR' exists but is not a CMake build directory; refusing to delete it" >&2
  exit 1
fi
rm -rf "$BUILD_DIR"
cmake -B "$BUILD_DIR" -S . \
  -DCMAKE_BUILD_TYPE="$BUILD_TYPE" \
  -DMCNK_WERROR=ON \
  -DMCNK_SANITIZE="$SANITIZE"
cmake --build "$BUILD_DIR" -j "$JOBS"
cd "$BUILD_DIR"
ctest --output-on-failure -j "$JOBS"
