#!/usr/bin/env bash
# CI entry point: configure, build, and run the full test suite (the
# repository's tier-1 verify command) in a fresh build directory.
#
# Usage: ./ci.sh [build-dir]
#   BUILD_TYPE=Debug ./ci.sh        # non-Release build
#   MCNK_SANITIZE=ON ./ci.sh        # ASan/UBSan run
set -euo pipefail

cd "$(dirname "$0")"

BUILD_DIR="${1:-build}"
BUILD_TYPE="${BUILD_TYPE:-Release}"
SANITIZE="${MCNK_SANITIZE:-OFF}"
JOBS="$(nproc 2>/dev/null || sysctl -n hw.ncpu 2>/dev/null || echo 4)"

# Only clobber directories that are clearly CMake build trees.
if [ -e "$BUILD_DIR" ] && [ ! -f "$BUILD_DIR/CMakeCache.txt" ]; then
  echo "error: '$BUILD_DIR' exists but is not a CMake build directory; refusing to delete it" >&2
  exit 1
fi
rm -rf "$BUILD_DIR"
cmake -B "$BUILD_DIR" -S . \
  -DCMAKE_BUILD_TYPE="$BUILD_TYPE" \
  -DMCNK_WERROR=ON \
  -DMCNK_SANITIZE="$SANITIZE"
cmake --build "$BUILD_DIR" -j "$JOBS"
cd "$BUILD_DIR"
ctest --output-on-failure -j "$JOBS"
