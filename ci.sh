#!/usr/bin/env bash
# CI entry point.
#
# Usage: ./ci.sh [build-dir]        # configure + build + full test suite
#                                   # (the repository's tier-1 verify) in a
#                                   # fresh build directory
#        ./ci.sh bench [build-dir]  # build micro_support + micro_linalg +
#                                   # fig08 + scenario_sweep and emit
#                                   # bench/results/BENCH_<name>.json
#                                   # (the recorded performance trajectory,
#                                   # incl. the compile-cache sweep point)
#        ./ci.sh tsan [build-dir]   # ThreadSanitizer pass over the
#                                   # threadpool + parallel-compile suites
#                                   # (default dir: build-tsan)
#        ./ci.sh fuzz [build-dir]   # cross-engine differential fuzz: the
#                                   # conformance suite with fixed seeds
#                                   # plus the `mcnk fuzz` CLI oracle
#        ./ci.sh tidy [build-dir]   # clang-tidy over src/ + examples/ +
#                                   # bench/ via compile_commands.json
#                                   # (skips with a notice when the tool
#                                   # is not installed)
#        ./ci.sh serve-smoke [build-dir]  # build mcnk_serve + mcnk_cli and
#                                   # run the daemon restart / fix-no-op
#                                   # smoke tests plus the serve suite
#        ./ci.sh lint [build-dir]   # mcnk_cli lint --json over the
#                                   # examples/pnk corpus and the scenario
#                                   # registry, diffed against the
#                                   # checked-in tests/lint/baseline.json
#                                   # (zero new diagnostics allowed)
#   BUILD_TYPE=Debug ./ci.sh        # non-Release build
#   MCNK_SANITIZE=ON ./ci.sh        # ASan/UBSan run
#   MCNK_SANITIZE=ON ./ci.sh fuzz   # fuzz pass under ASan/UBSan
#   MCNK_FUZZ_ITERS=2000 ./ci.sh fuzz     # longer local fuzz runs
#   MCNK_BENCH_MIN_TIME=2 ./ci.sh bench   # longer per-benchmark runtime
set -euo pipefail

cd "$(dirname "$0")"

MODE=verify
if [ "${1:-}" = "bench" ]; then
  MODE=bench
  shift
elif [ "${1:-}" = "tsan" ]; then
  MODE=tsan
  shift
elif [ "${1:-}" = "fuzz" ]; then
  MODE=fuzz
  shift
elif [ "${1:-}" = "tidy" ]; then
  MODE=tidy
  shift
elif [ "${1:-}" = "serve-smoke" ]; then
  MODE=serve-smoke
  shift
elif [ "${1:-}" = "lint" ]; then
  MODE=lint
  shift
fi

DEFAULT_DIR=build
[ "$MODE" = "tsan" ] && DEFAULT_DIR=build-tsan
BUILD_DIR="${1:-$DEFAULT_DIR}"
BUILD_TYPE="${BUILD_TYPE:-Release}"
SANITIZE="${MCNK_SANITIZE:-OFF}"
JOBS="$(nproc 2>/dev/null || sysctl -n hw.ncpu 2>/dev/null || echo 4)"

if [ "$MODE" = "tsan" ]; then
  # Data-race pass over the concurrency-heavy suites: the persistent
  # thread-pool engine and the parallel `case` compiler. A dedicated
  # build tree keeps TSan instrumentation out of the main build.
  cmake -B "$BUILD_DIR" -S . \
    -DCMAKE_BUILD_TYPE=RelWithDebInfo \
    -DMCNK_WERROR=ON \
    -DMCNK_TSAN=ON \
    -DMCNK_BUILD_BENCH=OFF \
    -DMCNK_BUILD_EXAMPLES=OFF
  cmake --build "$BUILD_DIR" -j "$JOBS" \
    --target support_threadpool_test fdd_parallel_test serve_test
  # Death tests fork, which TSan dislikes; they are covered by the
  # regular suite, so skip them here.
  TSAN_OPTIONS="${TSAN_OPTIONS:-halt_on_error=1}" \
    "$BUILD_DIR/support_threadpool_test" \
    --gtest_filter='-*DeathTest*'
  TSAN_OPTIONS="${TSAN_OPTIONS:-halt_on_error=1}" \
    "$BUILD_DIR/fdd_parallel_test"
  # The serving layer's concurrency: sessions racing on one shared
  # CompileCache + CacheStore, and the TCP accept/connection threads.
  TSAN_OPTIONS="${TSAN_OPTIONS:-halt_on_error=1}" \
    "$BUILD_DIR/serve_test" \
    --gtest_filter='-*DeathTest*'
  echo "ThreadSanitizer pass clean"
  exit 0
fi

if [ "$MODE" = "tidy" ]; then
  # Static-analysis pass: clang-tidy (check set pinned in .clang-tidy)
  # over the library, tool, and bench sources, driven by the build tree's
  # compilation database. Containers without clang-tidy skip with a
  # notice (exit 0) so the pass is safe to wire into every pipeline; the
  # check set still gates merges wherever the tool exists.
  TIDY="${CLANG_TIDY:-clang-tidy}"
  if ! command -v "$TIDY" >/dev/null 2>&1; then
    echo "ci.sh tidy: clang-tidy not found; skipping (install it or set CLANG_TIDY=<path>)"
    exit 0
  fi
  if [ ! -f "$BUILD_DIR/compile_commands.json" ]; then
    cmake -B "$BUILD_DIR" -S . \
      -DCMAKE_BUILD_TYPE="$BUILD_TYPE" \
      -DMCNK_WERROR=ON
  fi
  mapfile -t files < <(git ls-files 'src/*.cpp' 'src/**/*.cpp' \
    'examples/*.cpp' 'bench/*.cpp')
  if [ "${#files[@]}" -eq 0 ]; then
    echo "error: no sources found for clang-tidy" >&2
    exit 1
  fi
  "$TIDY" -p "$BUILD_DIR" --quiet --warnings-as-errors='*' "${files[@]}"
  echo "clang-tidy pass clean (${#files[@]} files)"
  exit 0
fi

if [ "$MODE" = "fuzz" ]; then
  # Differential-fuzz pass: the conformance suite (fixed seeds, iteration
  # count scaled by MCNK_FUZZ_ITERS) plus the `mcnk fuzz` CLI oracle.
  # Composes with the sanitizer modes: MCNK_SANITIZE=ON ./ci.sh fuzz runs
  # the same pass under ASan/UBSan (use a fresh build dir so the
  # instrumented objects do not pollute the main tree).
  if [ ! -f "$BUILD_DIR/CMakeCache.txt" ]; then
    cmake -B "$BUILD_DIR" -S . \
      -DCMAKE_BUILD_TYPE="$BUILD_TYPE" \
      -DMCNK_WERROR=ON \
      -DMCNK_SANITIZE="$SANITIZE"
  elif [ "$SANITIZE" = "ON" ] && \
       ! grep -q '^MCNK_SANITIZE:BOOL=ON$' "$BUILD_DIR/CMakeCache.txt"; then
    # Reusing an unsanitized tree would "pass" without any ASan/UBSan
    # coverage; refuse rather than report false assurance.
    echo "error: '$BUILD_DIR' was configured without MCNK_SANITIZE; use a fresh dir" >&2
    echo "hint: MCNK_SANITIZE=ON ./ci.sh fuzz build-asan" >&2
    exit 1
  fi
  cmake --build "$BUILD_DIR" -j "$JOBS" --target conformance_test mcnk_cli
  MCNK_FUZZ_ITERS="${MCNK_FUZZ_ITERS:-170}" "$BUILD_DIR/conformance_test"
  "$BUILD_DIR/mcnk_cli" fuzz --seed "${MCNK_FUZZ_SEED:-0xC1A0}" \
    --iters "${MCNK_CLI_FUZZ_ITERS:-25}"
  echo "Differential fuzz pass clean"
  exit 0
fi

if [ "$MODE" = "serve-smoke" ]; then
  # Serving-layer smoke (ARCHITECTURE S16): the daemon restart cycle
  # (cold store -> warm store, byte-identical answers), the lint --fix
  # no-op contract, and the full serve_test suite. Composes with
  # MCNK_SANITIZE=ON for an ASan/UBSan pass over the socket and store
  # paths (use a fresh build dir, as with fuzz).
  if [ ! -f "$BUILD_DIR/CMakeCache.txt" ]; then
    cmake -B "$BUILD_DIR" -S . \
      -DCMAKE_BUILD_TYPE="$BUILD_TYPE" \
      -DMCNK_WERROR=ON \
      -DMCNK_SANITIZE="$SANITIZE"
  fi
  cmake --build "$BUILD_DIR" -j "$JOBS" \
    --target mcnk_serve mcnk_cli serve_test
  "$BUILD_DIR/serve_test"
  (cd "$BUILD_DIR" && ctest -R 'serve_smoke|fix_noop_smoke' \
    --output-on-failure)
  echo "Serve smoke pass clean"
  exit 0
fi

if [ "$MODE" = "lint" ]; then
  # Lint-baseline pass (ARCHITECTURE S15/S17): every diagnostic the CLI
  # emits over the examples/pnk corpus and the scenario registry must
  # match tests/lint/baseline.json byte for byte — new findings (or
  # vanished ones) fail the pass so diagnostic drift is always a
  # deliberate, reviewed baseline update. Exit 1 from the CLI just means
  # "findings exist" (expected for most of the corpus); exit >= 2 is a
  # real error and fails immediately.
  if [ ! -f "$BUILD_DIR/CMakeCache.txt" ]; then
    cmake -B "$BUILD_DIR" -S . \
      -DCMAKE_BUILD_TYPE="$BUILD_TYPE" \
      -DMCNK_WERROR=ON \
      -DMCNK_SANITIZE="$SANITIZE"
  fi
  cmake --build "$BUILD_DIR" -j "$JOBS" --target mcnk_cli
  CURRENT="$BUILD_DIR/lint_current.json"
  : > "$CURRENT"
  for f in examples/pnk/*.pnk; do
    rc=0
    "$BUILD_DIR/mcnk_cli" lint --json "$f" >> "$CURRENT" || rc=$?
    if [ "$rc" -ge 2 ]; then
      echo "error: mcnk_cli lint failed on $f (exit $rc)" >&2
      exit 1
    fi
  done
  rc=0
  "$BUILD_DIR/mcnk_cli" lint --json --registry >> "$CURRENT" || rc=$?
  if [ "$rc" -ge 2 ]; then
    echo "error: mcnk_cli lint --registry failed (exit $rc)" >&2
    exit 1
  fi
  if ! diff -u tests/lint/baseline.json "$CURRENT"; then
    echo "error: lint diagnostics drifted from tests/lint/baseline.json" >&2
    echo "hint: review the diff above; if intended, copy $CURRENT over the baseline" >&2
    exit 1
  fi
  echo "Lint baseline pass clean ($(wc -l < "$CURRENT") corpus lines)"
  exit 0
fi

if [ "$MODE" = "bench" ]; then
  # Bench mode reuses an existing build tree (benchmarks want a warm
  # Release build, not a from-scratch rebuild) — but refuses Debug or
  # sanitized trees so slow-by-10x numbers never land in bench/results/.
  if [ ! -f "$BUILD_DIR/CMakeCache.txt" ]; then
    cmake -B "$BUILD_DIR" -S . \
      -DCMAKE_BUILD_TYPE="$BUILD_TYPE" \
      -DMCNK_WERROR=ON \
      -DMCNK_SANITIZE="$SANITIZE"
  fi
  if ! grep -q '^CMAKE_BUILD_TYPE:STRING=Release$' "$BUILD_DIR/CMakeCache.txt"; then
    echo "error: '$BUILD_DIR' is not a Release build; bench numbers would be meaningless" >&2
    echo "hint: ./ci.sh bench <fresh-dir>  or reconfigure with -DCMAKE_BUILD_TYPE=Release" >&2
    exit 1
  fi
  if grep -Eq '^MCNK_(SANITIZE|TSAN):BOOL=ON$' "$BUILD_DIR/CMakeCache.txt"; then
    echo "error: '$BUILD_DIR' has sanitizers enabled; refusing to record bench numbers" >&2
    exit 1
  fi
  cmake --build "$BUILD_DIR" -j "$JOBS" \
    --target micro_support micro_linalg fig08_parallel_speedup \
             fig07_fattree_scalability scenario_sweep serve_throughput
  mkdir -p bench/results
  for bench in micro_support micro_linalg; do
    if [ ! -x "$BUILD_DIR/$bench" ]; then
      echo "error: $bench was not built (is Google Benchmark installed?)" >&2
      exit 1
    fi
    "$BUILD_DIR/$bench" \
      --benchmark_out="bench/results/BENCH_${bench}.json" \
      --benchmark_out_format=json \
      --benchmark_min_time="${MCNK_BENCH_MIN_TIME:-0.2}"
  done
  # Fig 8 trajectory point: parallel-compile speedup on this host (the
  # JSON records host concurrency, so single-core CI points stay
  # interpretable next to multi-core ones).
  MCNK_FIG8_JSON=bench/results/BENCH_fig08_parallel.json \
    "$BUILD_DIR/fig08_parallel_speedup"
  # Compile-cache trajectory point: the per-ingress query sweep across the
  # registry, cached vs uncached (reference-equality enforced; the run
  # fails on any mismatch). The same invocation records the blocked-solver
  # registry sweep (Exact monolithic vs SCC/DAG blocks, ARCHITECTURE S13)
  # and the modular-solver registry sweep (Rational Exact vs multi-prime
  # ModularExact, ARCHITECTURE S14).
  # The same invocation also records the simplify-sweep point: the cached
  # per-ingress family with the S15 verified simplifier in front of every
  # compile (reference equality enforced; hit-rate and node-count deltas
  # recorded) — and the slice-sweep point: every registry scenario,
  # plain Exact vs S17 delivery-cone-sliced Exact (answer equality
  # enforced; wall-clock and FDD-node deltas recorded).
  MCNK_SWEEP_TABLE=0 \
    MCNK_SWEEP_CACHE_JSON=bench/results/BENCH_sweep_cache.json \
    MCNK_SWEEP_BLOCKED_JSON=bench/results/BENCH_sweep_blocked.json \
    MCNK_SWEEP_MODULAR_JSON=bench/results/BENCH_sweep_modular.json \
    MCNK_SWEEP_SIMPLIFY_JSON=bench/results/BENCH_sweep_simplify.json \
    MCNK_SWEEP_SLICE_JSON=bench/results/BENCH_sweep_slice.json \
    "$BUILD_DIR/scenario_sweep"
  # Blocked-solver trajectory point on the Fig 7 FatTree family: Exact
  # monolithic vs blocked, reference-equality enforced, elimination-op and
  # fill-in counters recorded per point.
  MCNK_FIG7_BLOCKED_JSON=bench/results/BENCH_solver_blocked.json \
    "$BUILD_DIR/fig07_fattree_scalability"
  # Modular-solver trajectory point: Rational Exact vs multi-prime
  # ModularExact on the Fig 7 FatTree family and the Fig 10 diamond-chain
  # family (reference-equality enforced; the chains are where the wide
  # CRT moduli and the >= 5x exact-solve speedups live).
  MCNK_FIG7_MODULAR_JSON=bench/results/BENCH_solver_modular.json \
    "$BUILD_DIR/fig07_fattree_scalability"
  # Serving-layer trajectory point: the registry replayed through one
  # daemon session, cold store vs restart-warmed store (warm answers must
  # come from disk and be byte-identical; the run fails otherwise).
  MCNK_SERVE_JSON=bench/results/BENCH_serve_throughput.json \
    "$BUILD_DIR/serve_throughput"
  echo "Wrote bench/results/BENCH_micro_{support,linalg}.json, BENCH_fig08_parallel.json, BENCH_sweep_{cache,blocked,modular,simplify,slice}.json, BENCH_solver_{blocked,modular}.json, and BENCH_serve_throughput.json"
  exit 0
fi

# Only clobber directories that are clearly CMake build trees.
if [ -e "$BUILD_DIR" ] && [ ! -f "$BUILD_DIR/CMakeCache.txt" ]; then
  echo "error: '$BUILD_DIR' exists but is not a CMake build directory; refusing to delete it" >&2
  exit 1
fi
rm -rf "$BUILD_DIR"
cmake -B "$BUILD_DIR" -S . \
  -DCMAKE_BUILD_TYPE="$BUILD_TYPE" \
  -DMCNK_WERROR=ON \
  -DMCNK_SANITIZE="$SANITIZE"
cmake --build "$BUILD_DIR" -j "$JOBS"
cd "$BUILD_DIR"
ctest --output-on-failure -j "$JOBS"
