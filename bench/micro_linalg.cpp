//===----------------------------------------------------------------------===//
///
/// \file
/// Microbenchmarks for the linear-algebra substrate: sparse LU (the
/// UMFPACK stand-in), Neumann iteration, and the exact absorbing-chain
/// solver — the engines behind Theorem 4.7's closed form.
///
//===----------------------------------------------------------------------===//

#include "linalg/ModSolve.h"
#include "linalg/Solve.h"
#include "linalg/SparseLU.h"
#include "markov/Absorbing.h"
#include "support/ModArith.h"

#include <benchmark/benchmark.h>

#include <random>

using namespace mcnk;
using namespace mcnk::linalg;

namespace {

/// Random diagonally-dominant sparse system of dimension N.
SparseMatrix randomSystem(std::size_t N, unsigned Seed) {
  std::mt19937_64 Rng(Seed);
  std::uniform_real_distribution<double> Coef(-1.0, 1.0);
  std::uniform_int_distribution<std::size_t> Col(0, N - 1);
  std::vector<Triplet> Entries;
  for (std::size_t R = 0; R < N; ++R) {
    double RowSum = 0.0;
    for (int E = 0; E < 4; ++E) {
      std::size_t C = Col(Rng);
      if (C == R)
        continue;
      double V = Coef(Rng);
      Entries.push_back({R, C, V});
      RowSum += std::abs(V);
    }
    Entries.push_back({R, R, RowSum + 1.0});
  }
  return SparseMatrix::fromTriplets(N, N, Entries);
}

/// Birth-death absorbing chain of N transient states.
markov::AbsorbingChain birthDeath(std::size_t N) {
  markov::AbsorbingChain Chain;
  Chain.NumTransient = N;
  Chain.NumAbsorbing = 2;
  for (std::size_t K = 0; K < N; ++K) {
    if (K + 1 < N)
      Chain.QEntries.push_back({K, K + 1, Rational(1, 2)});
    else
      Chain.REntries.push_back({K, 1, Rational(1, 2)});
    if (K > 0)
      Chain.QEntries.push_back({K, K - 1, Rational(1, 2)});
    else
      Chain.REntries.push_back({K, 0, Rational(1, 2)});
  }
  return Chain;
}

} // namespace

static void BM_SparseLUFactor(benchmark::State &State) {
  SparseMatrix A = randomSystem(static_cast<std::size_t>(State.range(0)),
                                12345);
  for (auto _ : State) {
    SparseLU LU;
    benchmark::DoNotOptimize(LU.factor(A));
  }
}
BENCHMARK(BM_SparseLUFactor)->Arg(100)->Arg(400)->Arg(1600);

static void BM_SparseLUSolve(benchmark::State &State) {
  std::size_t N = static_cast<std::size_t>(State.range(0));
  SparseMatrix A = randomSystem(N, 999);
  SparseLU LU;
  bool Ok = LU.factor(A);
  if (!Ok)
    State.SkipWithError("singular");
  std::vector<double> B(N, 1.0);
  for (auto _ : State) {
    std::vector<double> X = B;
    LU.solve(X);
    benchmark::DoNotOptimize(X);
  }
}
BENCHMARK(BM_SparseLUSolve)->Arg(100)->Arg(1600);

static void BM_NeumannSolve(benchmark::State &State) {
  std::size_t N = static_cast<std::size_t>(State.range(0));
  // Substochastic random walk with drain.
  std::vector<Triplet> Entries;
  for (std::size_t R = 0; R < N; ++R) {
    Entries.push_back({R, (R + 1) % N, 0.45});
    Entries.push_back({R, (R + N - 1) % N, 0.45});
  }
  SparseMatrix Q = SparseMatrix::fromTriplets(N, N, Entries);
  std::vector<double> B(N, 0.1), X;
  for (auto _ : State)
    benchmark::DoNotOptimize(linalg::neumannSolve(Q, B, X));
}
BENCHMARK(BM_NeumannSolve)->Arg(100)->Arg(1600);

static void BM_AbsorbingExact(benchmark::State &State) {
  markov::AbsorbingChain Chain =
      birthDeath(static_cast<std::size_t>(State.range(0)));
  for (auto _ : State) {
    linalg::DenseMatrix<Rational> A;
    benchmark::DoNotOptimize(markov::solveAbsorptionExact(Chain, A));
  }
}
BENCHMARK(BM_AbsorbingExact)->Arg(32)->Arg(128);

static void BM_AbsorbingModular(benchmark::State &State) {
  // Counterpart of BM_AbsorbingExact: the multi-prime engine on the same
  // chains (mod-p elimination + CRT + verified rational reconstruction).
  markov::AbsorbingChain Chain =
      birthDeath(static_cast<std::size_t>(State.range(0)));
  for (auto _ : State) {
    linalg::DenseMatrix<Rational> A;
    benchmark::DoNotOptimize(markov::solveAbsorptionModular(Chain, A));
  }
}
BENCHMARK(BM_AbsorbingModular)->Arg(32)->Arg(128);

static void BM_ModSolvePrime(benchmark::State &State) {
  // One prime's share of the modular solve: the I - Q system of the
  // birth-death chain reduced mod p and eliminated with the word-size
  // kernels (no bignum arithmetic anywhere on this path).
  std::size_t N = static_cast<std::size_t>(State.range(0));
  PrimeField F(modPrime(0));
  std::uint64_t Half;
  (void)rationalMod(Rational(1, 2), F, Half);
  std::uint64_t MinusHalf = F.encode(F.prime() - Half);
  std::vector<linalg::ModTriplet> A;
  std::vector<std::uint64_t> B(N, 0);
  for (std::size_t K = 0; K < N; ++K) {
    A.push_back({K, K, F.one()});
    if (K + 1 < N)
      A.push_back({K, K + 1, MinusHalf});
    else
      B[K] = F.encode(Half);
    if (K > 0)
      A.push_back({K, K - 1, MinusHalf});
  }
  for (auto _ : State) {
    std::vector<std::uint64_t> Rhs = B;
    std::size_t Ops = 0, Fill = 0;
    benchmark::DoNotOptimize(linalg::modSolveOrdered(
        F, N, A, Rhs, 1, linalg::OrderingKind::Natural, Ops, Fill));
  }
}
BENCHMARK(BM_ModSolvePrime)->Arg(128)->Arg(512);

static void BM_CrtFoldLimbs(benchmark::State &State) {
  // The per-entry CRT accumulation of one matrix entry across K primes:
  // K allocation-free X += M·T passes on raw 64-bit limbs (prefix moduli
  // precomputed, as the solver does once per accepted prime).
  std::size_t K = static_cast<std::size_t>(State.range(0));
  std::vector<std::vector<std::uint64_t>> Prefix(K);
  std::vector<std::uint64_t> Residue(K);
  BigInt M(1);
  std::mt19937_64 Rng(7);
  for (std::size_t I = 0; I < K; ++I) {
    Prefix[I] = M.magnitudeLimbs64();
    std::uint64_t P = modPrime(I);
    Residue[I] = Rng() % P;
    M *= BigInt::fromUnsigned(P);
  }
  std::vector<std::uint64_t> X;
  for (auto _ : State) {
    X.clear();
    for (std::size_t I = 0; I < K; ++I)
      crtFoldLimbs64(X, Prefix[I], Residue[I]);
    benchmark::DoNotOptimize(X.data());
  }
}
BENCHMARK(BM_CrtFoldLimbs)->Arg(16)->Arg(64);

static void BM_RationalReconstruct(benchmark::State &State) {
  // Wang reconstruction (Lehmer-batched EGCD on 64-bit limb kernels) of a
  // wide known rational from its CRT image modulo K primes.
  std::size_t K = static_cast<std::size_t>(State.range(0));
  BigInt M(1);
  for (std::size_t I = 0; I < K; ++I)
    M *= BigInt::fromUnsigned(modPrime(I));
  // N/D sized just inside the Wang bound sqrt(M/2): ~30 of the ~62
  // modulus bits per prime go to each side.
  unsigned Side = static_cast<unsigned>(K) * 30;
  BigInt N = BigInt::pow(BigInt(2), Side) + BigInt(1);
  BigInt D = BigInt::pow(BigInt(3), (Side * 3) / 5); // 3^k ~ 2^1.585k.
  Rational Value(N, D);
  std::vector<std::uint64_t> X;
  BigInt MPrefix(1);
  for (std::size_t I = 0; I < K; ++I) {
    PrimeField F(modPrime(I));
    std::uint64_t R;
    if (!rationalMod(Value, F, R))
      State.SkipWithError("unlucky prime in setup");
    std::uint64_t XModP = F.encode(limbs64ModU64(X, F.prime()));
    std::uint64_t InvM = F.inv(F.encode(MPrefix.modU64(F.prime())));
    crtFoldLimbs64(X, MPrefix.magnitudeLimbs64(),
                   F.decode(F.mul(F.sub(F.encode(R), XModP), InvM)));
    MPrefix *= BigInt::fromUnsigned(F.prime());
  }
  BigInt XB = BigInt::fromLimbs64(false, X);
  BigInt Bound = isqrtBigInt((M - BigInt(1)) / BigInt(2));
  for (auto _ : State) {
    Rational Out;
    bool Ok = rationalReconstruct(XB, M, Bound, Out);
    benchmark::DoNotOptimize(Ok);
    if (!Ok || Out != Value)
      State.SkipWithError("reconstruction failed");
  }
}
BENCHMARK(BM_RationalReconstruct)->Arg(16)->Arg(64);

static void BM_AbsorbingDirect(benchmark::State &State) {
  markov::AbsorbingChain Chain =
      birthDeath(static_cast<std::size_t>(State.range(0)));
  for (auto _ : State) {
    linalg::DenseMatrix<double> A;
    benchmark::DoNotOptimize(markov::solveAbsorptionDouble(
        Chain, A, markov::SolverKind::Direct));
  }
}
BENCHMARK(BM_AbsorbingDirect)->Arg(32)->Arg(512);

BENCHMARK_MAIN();
