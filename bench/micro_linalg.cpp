//===----------------------------------------------------------------------===//
///
/// \file
/// Microbenchmarks for the linear-algebra substrate: sparse LU (the
/// UMFPACK stand-in), Neumann iteration, and the exact absorbing-chain
/// solver — the engines behind Theorem 4.7's closed form.
///
//===----------------------------------------------------------------------===//

#include "linalg/Solve.h"
#include "linalg/SparseLU.h"
#include "markov/Absorbing.h"

#include <benchmark/benchmark.h>

#include <random>

using namespace mcnk;
using namespace mcnk::linalg;

namespace {

/// Random diagonally-dominant sparse system of dimension N.
SparseMatrix randomSystem(std::size_t N, unsigned Seed) {
  std::mt19937_64 Rng(Seed);
  std::uniform_real_distribution<double> Coef(-1.0, 1.0);
  std::uniform_int_distribution<std::size_t> Col(0, N - 1);
  std::vector<Triplet> Entries;
  for (std::size_t R = 0; R < N; ++R) {
    double RowSum = 0.0;
    for (int E = 0; E < 4; ++E) {
      std::size_t C = Col(Rng);
      if (C == R)
        continue;
      double V = Coef(Rng);
      Entries.push_back({R, C, V});
      RowSum += std::abs(V);
    }
    Entries.push_back({R, R, RowSum + 1.0});
  }
  return SparseMatrix::fromTriplets(N, N, Entries);
}

/// Birth-death absorbing chain of N transient states.
markov::AbsorbingChain birthDeath(std::size_t N) {
  markov::AbsorbingChain Chain;
  Chain.NumTransient = N;
  Chain.NumAbsorbing = 2;
  for (std::size_t K = 0; K < N; ++K) {
    if (K + 1 < N)
      Chain.QEntries.push_back({K, K + 1, Rational(1, 2)});
    else
      Chain.REntries.push_back({K, 1, Rational(1, 2)});
    if (K > 0)
      Chain.QEntries.push_back({K, K - 1, Rational(1, 2)});
    else
      Chain.REntries.push_back({K, 0, Rational(1, 2)});
  }
  return Chain;
}

} // namespace

static void BM_SparseLUFactor(benchmark::State &State) {
  SparseMatrix A = randomSystem(static_cast<std::size_t>(State.range(0)),
                                12345);
  for (auto _ : State) {
    SparseLU LU;
    benchmark::DoNotOptimize(LU.factor(A));
  }
}
BENCHMARK(BM_SparseLUFactor)->Arg(100)->Arg(400)->Arg(1600);

static void BM_SparseLUSolve(benchmark::State &State) {
  std::size_t N = static_cast<std::size_t>(State.range(0));
  SparseMatrix A = randomSystem(N, 999);
  SparseLU LU;
  bool Ok = LU.factor(A);
  if (!Ok)
    State.SkipWithError("singular");
  std::vector<double> B(N, 1.0);
  for (auto _ : State) {
    std::vector<double> X = B;
    LU.solve(X);
    benchmark::DoNotOptimize(X);
  }
}
BENCHMARK(BM_SparseLUSolve)->Arg(100)->Arg(1600);

static void BM_NeumannSolve(benchmark::State &State) {
  std::size_t N = static_cast<std::size_t>(State.range(0));
  // Substochastic random walk with drain.
  std::vector<Triplet> Entries;
  for (std::size_t R = 0; R < N; ++R) {
    Entries.push_back({R, (R + 1) % N, 0.45});
    Entries.push_back({R, (R + N - 1) % N, 0.45});
  }
  SparseMatrix Q = SparseMatrix::fromTriplets(N, N, Entries);
  std::vector<double> B(N, 0.1), X;
  for (auto _ : State)
    benchmark::DoNotOptimize(linalg::neumannSolve(Q, B, X));
}
BENCHMARK(BM_NeumannSolve)->Arg(100)->Arg(1600);

static void BM_AbsorbingExact(benchmark::State &State) {
  markov::AbsorbingChain Chain =
      birthDeath(static_cast<std::size_t>(State.range(0)));
  for (auto _ : State) {
    linalg::DenseMatrix<Rational> A;
    benchmark::DoNotOptimize(markov::solveAbsorptionExact(Chain, A));
  }
}
BENCHMARK(BM_AbsorbingExact)->Arg(32)->Arg(128);

static void BM_AbsorbingDirect(benchmark::State &State) {
  markov::AbsorbingChain Chain =
      birthDeath(static_cast<std::size_t>(State.range(0)));
  for (auto _ : State) {
    linalg::DenseMatrix<double> A;
    benchmark::DoNotOptimize(markov::solveAbsorptionDouble(
        Chain, A, markov::SolverKind::Direct));
  }
}
BENCHMARK(BM_AbsorbingDirect)->Arg(32)->Arg(512);

BENCHMARK_MAIN();
