//===----------------------------------------------------------------------===//
///
/// \file
/// Microbenchmarks for the FDD operations (§5.1): primitive construction,
/// sequential composition, branching, convex combination, loop solving,
/// and full model compilation — the per-operation costs behind Fig 7.
///
//===----------------------------------------------------------------------===//

#include "fdd/Compile.h"
#include "fdd/Fdd.h"
#include "routing/Routing.h"

#include <benchmark/benchmark.h>

using namespace mcnk;
using namespace mcnk::fdd;

static void BM_FddSeqChain(benchmark::State &State) {
  // Compose a chain of assignments and tests over distinct fields.
  for (auto _ : State) {
    State.PauseTiming();
    FddManager M; // Fresh manager: measures cold composition.
    State.ResumeTiming();
    FddRef Acc = M.identityLeaf();
    for (int F = 0; F < State.range(0); ++F) {
      Acc = M.seq(Acc, M.test(static_cast<FieldId>(F), 1));
      Acc = M.seq(Acc, M.assign(static_cast<FieldId>(F), 2));
    }
    benchmark::DoNotOptimize(Acc);
  }
}
BENCHMARK(BM_FddSeqChain)->Arg(8)->Arg(32);

static void BM_FddBranchCascade(benchmark::State &State) {
  for (auto _ : State) {
    State.PauseTiming();
    FddManager M;
    State.ResumeTiming();
    FddRef Acc = M.dropLeaf();
    for (int V = State.range(0); V-- > 0;)
      Acc = M.branch(M.test(0, static_cast<FieldValue>(V)),
                     M.assign(1, static_cast<FieldValue>(V)), Acc);
    benchmark::DoNotOptimize(Acc);
  }
}
BENCHMARK(BM_FddBranchCascade)->Arg(16)->Arg(128);

static void BM_FddChoiceTree(benchmark::State &State) {
  for (auto _ : State) {
    State.PauseTiming();
    FddManager M;
    State.ResumeTiming();
    FddRef Acc = M.assign(0, 0);
    for (int V = 1; V <= State.range(0); ++V)
      Acc = M.choice(Rational(1, V + 1),
                     M.assign(0, static_cast<FieldValue>(V)), Acc);
    benchmark::DoNotOptimize(Acc);
  }
}
BENCHMARK(BM_FddChoiceTree)->Arg(8)->Arg(64);

static void BM_FddLoopSolve(benchmark::State &State) {
  // while f=0 do walk on {0..N} — a loop whose chain has N+1 states.
  for (auto _ : State) {
    State.PauseTiming();
    FddManager M(markov::SolverKind::Direct);
    ast::Context Ctx;
    FieldId F = Ctx.field("f");
    FieldId G = Ctx.field("g");
    // Body: g cycles through N values, f flips to 1 on g=N-1.
    const ast::Node *Body = Ctx.assign(F, 1);
    for (int V = State.range(0); V-- > 0;)
      Body = Ctx.ite(Ctx.test(G, static_cast<FieldValue>(V)),
                     Ctx.seq(Ctx.assign(G, static_cast<FieldValue>(V + 1)),
                             Ctx.choice(Rational(1, 2), Ctx.assign(F, 0),
                                        Ctx.assign(F, 1))),
                     Body);
    const ast::Node *Loop = Ctx.whileLoop(Ctx.test(F, 0), Body);
    State.ResumeTiming();
    benchmark::DoNotOptimize(compile(M, Loop));
  }
}
BENCHMARK(BM_FddLoopSolve)->Arg(16)->Arg(64);

static void BM_CompileTriangleModel(benchmark::State &State) {
  for (auto _ : State) {
    State.PauseTiming();
    ast::Context Ctx;
    routing::TriangleExample Ex = routing::buildTriangleExample(Ctx);
    FddManager M;
    State.ResumeTiming();
    benchmark::DoNotOptimize(compile(M, Ex.ResilientF2));
  }
}
BENCHMARK(BM_CompileTriangleModel);

static void BM_CompileFatTreeModel(benchmark::State &State) {
  for (auto _ : State) {
    State.PauseTiming();
    ast::Context Ctx;
    topology::FatTreeLayout L;
    topology::makeAbFatTree(static_cast<unsigned>(State.range(0)), L);
    routing::ModelOptions O;
    O.RoutingScheme = routing::Scheme::F100;
    O.Failures = routing::FailureModel::iid(Rational(1, 1000));
    routing::NetworkModel Net = routing::buildFatTreeModel(L, O, Ctx);
    FddManager M(markov::SolverKind::Direct);
    State.ResumeTiming();
    benchmark::DoNotOptimize(compile(M, Net.Program));
  }
}
BENCHMARK(BM_CompileFatTreeModel)->Arg(4)->Arg(8);

BENCHMARK_MAIN();
