//===----------------------------------------------------------------------===//
///
/// \file
/// Figure 12: the quantitative F10 case study on the AB FatTree (p = 4)
/// with unbounded per-hop failures, averaged over all ingresses:
///
///   (a) Pr[delivery] vs link failure probability 1/128 .. 1/4
///   (b) CDF of hop count at pr = 1/4 (latency/path-stretch view)
///   (c) E[hop count | delivered] vs failure probability
///
/// Series: AB FatTree with F10_0 / F10_3 / F10_3,5 plus standard FatTree
/// with F10_3,5 (the topology co-design comparison). Shapes expected from
/// the paper: (a) F10_0 dips, the rerouting schemes stay near 1;
/// (b) F10_0 plateaus at 4 hops while the rerouting schemes deliver more
/// via 6/8-hop detours, and the standard FatTree pays longer paths;
/// (c) F10_0's conditional hop count *decreases* with pr (surviving mass
/// shifts to short intra-pod paths) while the rerouting schemes' grows.
///
//===----------------------------------------------------------------------===//

#include "analysis/Verifier.h"
#include "routing/Routing.h"
#include "support/Timer.h"

#include <cstdio>
#include <vector>

using namespace mcnk;
using namespace mcnk::routing;

namespace {

struct Series {
  const char *Name;
  bool AB;
  Scheme S;
};

const Series AllSeries[] = {
    {"AB FatTree, F10_0  ", true, Scheme::F100},
    {"AB FatTree, F10_3  ", true, Scheme::F103},
    {"AB FatTree, F10_3,5", true, Scheme::F1035},
    {"FatTree,    F10_3,5", false, Scheme::F1035},
};

analysis::HopStats statsFor(const Series &Sr, const Rational &Pr,
                            unsigned HopCap) {
  ast::Context Ctx;
  topology::FatTreeLayout L;
  if (Sr.AB)
    topology::makeAbFatTree(4, L);
  else
    topology::makeFatTree(4, L);
  ModelOptions O;
  O.RoutingScheme = Sr.S;
  O.Failures = FailureModel::iid(Pr);
  O.CountHops = true;
  O.HopCap = HopCap;
  NetworkModel M = buildFatTreeModel(L, O, Ctx);
  analysis::Verifier V(markov::SolverKind::Direct);
  fdd::FddRef Model = V.compile(M.Program);
  std::vector<Packet> Ingresses;
  for (std::size_t I = 0; I < M.Ingresses.size(); ++I)
    Ingresses.push_back(M.ingressPacket(I, Ctx));
  return V.hopStats(Model, Ingresses, M.HopField);
}

} // namespace

int main() {
  const unsigned HopCap = 14;
  WallTimer Total;
  std::printf("=== Fig 12: F10 case study (p = 4, k = inf, all ingresses) "
              "===\n\n");

  const int Denominators[] = {128, 64, 32, 16, 8, 4};

  // Panel (a): delivery probability vs failure probability; panel (c):
  // conditional expected hop count — both from the same sweep.
  std::vector<std::vector<analysis::HopStats>> Sweep(
      std::size(AllSeries));
  for (std::size_t S = 0; S < std::size(AllSeries); ++S)
    for (int D : Denominators)
      Sweep[S].push_back(statsFor(AllSeries[S], Rational(1, D), HopCap));

  std::printf("(a) Pr[delivery] vs link failure probability\n");
  std::printf("  %-22s", "scheme \\ pr");
  for (int D : Denominators)
    std::printf("  1/%-7d", D);
  std::printf("\n");
  for (std::size_t S = 0; S < std::size(AllSeries); ++S) {
    std::printf("  %-22s", AllSeries[S].Name);
    for (std::size_t I = 0; I < Sweep[S].size(); ++I)
      std::printf("  %.6f ", Sweep[S][I].Delivered.toDouble());
    std::printf("\n");
  }

  std::printf("\n(b) Pr[hop count <= x] at pr = 1/4\n");
  std::printf("  %-22s", "scheme \\ hops");
  for (unsigned H = 2; H <= 12; H += 2)
    std::printf("  <=%-6u", H);
  std::printf("\n");
  for (std::size_t S = 0; S < std::size(AllSeries); ++S) {
    const analysis::HopStats &Stats = Sweep[S].back(); // pr = 1/4.
    std::printf("  %-22s", AllSeries[S].Name);
    for (unsigned H = 2; H <= 12; H += 2)
      std::printf("  %.4f ", Stats.cumulative(H).toDouble());
    std::printf("\n");
  }

  std::printf("\n(c) E[hop count | delivered] vs link failure "
              "probability\n");
  std::printf("  %-22s", "scheme \\ pr");
  for (int D : Denominators)
    std::printf("  1/%-7d", D);
  std::printf("\n");
  for (std::size_t S = 0; S < std::size(AllSeries); ++S) {
    std::printf("  %-22s", AllSeries[S].Name);
    for (std::size_t I = 0; I < Sweep[S].size(); ++I)
      std::printf("  %.4f   ", Sweep[S][I].expectedGivenDelivered());
    std::printf("\n");
  }
  std::printf("\ntotal time: %.3f s\n", Total.elapsed());
  return 0;
}
