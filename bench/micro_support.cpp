//===----------------------------------------------------------------------===//
///
/// \file
/// Microbenchmarks for the exact-arithmetic substrate (BigInt/Rational) —
/// the foundation every FDD leaf operation pays for.
///
//===----------------------------------------------------------------------===//

#include "support/BigInt.h"
#include "support/Rational.h"

#include <benchmark/benchmark.h>

using namespace mcnk;

static void BM_BigIntMultiply(benchmark::State &State) {
  BigInt A = BigInt::pow(BigInt(7), static_cast<unsigned>(State.range(0)));
  BigInt B = BigInt::pow(BigInt(11), static_cast<unsigned>(State.range(0)));
  for (auto _ : State)
    benchmark::DoNotOptimize(A * B);
}
BENCHMARK(BM_BigIntMultiply)->Arg(8)->Arg(64)->Arg(512);

static void BM_BigIntDivMod(benchmark::State &State) {
  BigInt A = BigInt::pow(BigInt(7), static_cast<unsigned>(State.range(0)));
  BigInt B = BigInt::pow(BigInt(11),
                         static_cast<unsigned>(State.range(0)) / 2);
  for (auto _ : State)
    benchmark::DoNotOptimize(BigInt::divMod(A, B));
}
BENCHMARK(BM_BigIntDivMod)->Arg(8)->Arg(64)->Arg(512);

static void BM_BigIntGcd(benchmark::State &State) {
  BigInt A = BigInt::pow(BigInt(2 * 3 * 5 * 7),
                         static_cast<unsigned>(State.range(0)));
  BigInt B = BigInt::pow(BigInt(2 * 3 * 11),
                         static_cast<unsigned>(State.range(0)));
  for (auto _ : State)
    benchmark::DoNotOptimize(BigInt::gcd(A, B));
}
BENCHMARK(BM_BigIntGcd)->Arg(8)->Arg(64);

static void BM_BigIntSmallAdd(benchmark::State &State) {
  // Word-sized operands: the common case for FDD leaf numerators.
  BigInt A(123456789), B(987654321);
  for (auto _ : State)
    benchmark::DoNotOptimize(A + B);
}
BENCHMARK(BM_BigIntSmallAdd);

static void BM_BigIntSmallMul(benchmark::State &State) {
  BigInt A(1000003), B(999999937);
  for (auto _ : State)
    benchmark::DoNotOptimize(A * B);
}
BENCHMARK(BM_BigIntSmallMul);

static void BM_BigIntSmallAccumulate(benchmark::State &State) {
  // In-place compound ops on word-sized values (hash-cons bucket sums).
  for (auto _ : State) {
    BigInt Acc(0);
    for (int I = 0; I < 64; ++I)
      Acc += BigInt(I * 7919);
    benchmark::DoNotOptimize(Acc);
  }
}
BENCHMARK(BM_BigIntSmallAccumulate);

static void BM_RationalSmallAdd(benchmark::State &State) {
  // Small-operand add: the weightedSum / leaf-merge hot path.
  Rational A(3, 7), B(5, 9);
  for (auto _ : State)
    benchmark::DoNotOptimize(A + B);
}
BENCHMARK(BM_RationalSmallAdd);

static void BM_RationalSmallMul(benchmark::State &State) {
  Rational A(355, 113), B(999, 1000);
  for (auto _ : State)
    benchmark::DoNotOptimize(A * B);
}
BENCHMARK(BM_RationalSmallMul);

static void BM_RationalSmallAccumulate(benchmark::State &State) {
  // Mass += W over a full decomposition, as in FddManager::weightedSum.
  for (auto _ : State) {
    Rational Mass(0);
    for (int I = 0; I < 64; ++I)
      Mass += Rational(1, 64);
    benchmark::DoNotOptimize(Mass);
  }
}
BENCHMARK(BM_RationalSmallAccumulate);

static void BM_RationalConvex(benchmark::State &State) {
  // The inner operation of every probabilistic-choice leaf merge.
  Rational R(1, 3), P(999, 1000), Q(1, 1000);
  for (auto _ : State)
    benchmark::DoNotOptimize(R * P + (Rational(1) - R) * Q);
}
BENCHMARK(BM_RationalConvex);

static void BM_RationalLongProduct(benchmark::State &State) {
  // Failure chains multiply many (1 - 1/1000) factors.
  for (auto _ : State) {
    Rational Acc(1);
    for (int I = 0; I < State.range(0); ++I)
      Acc *= Rational(999, 1000);
    benchmark::DoNotOptimize(Acc);
  }
}
BENCHMARK(BM_RationalLongProduct)->Arg(16)->Arg(128);

static void BM_RationalToDouble(benchmark::State &State) {
  Rational Tiny = Rational(1);
  for (int I = 0; I < 20; ++I)
    Tiny *= Rational(1, 1000);
  for (auto _ : State)
    benchmark::DoNotOptimize(Tiny.toDouble());
}
BENCHMARK(BM_RationalToDouble);

BENCHMARK_MAIN();
