//===----------------------------------------------------------------------===//
///
/// \file
/// Microbenchmarks for the exact-arithmetic substrate (BigInt/Rational) —
/// the foundation every FDD leaf operation pays for.
///
//===----------------------------------------------------------------------===//

#include "support/BigInt.h"
#include "support/Rational.h"

#include <benchmark/benchmark.h>

using namespace mcnk;

static void BM_BigIntMultiply(benchmark::State &State) {
  BigInt A = BigInt::pow(BigInt(7), static_cast<unsigned>(State.range(0)));
  BigInt B = BigInt::pow(BigInt(11), static_cast<unsigned>(State.range(0)));
  for (auto _ : State)
    benchmark::DoNotOptimize(A * B);
}
BENCHMARK(BM_BigIntMultiply)->Arg(8)->Arg(64)->Arg(512);

static void BM_BigIntDivMod(benchmark::State &State) {
  BigInt A = BigInt::pow(BigInt(7), static_cast<unsigned>(State.range(0)));
  BigInt B = BigInt::pow(BigInt(11),
                         static_cast<unsigned>(State.range(0)) / 2);
  for (auto _ : State)
    benchmark::DoNotOptimize(BigInt::divMod(A, B));
}
BENCHMARK(BM_BigIntDivMod)->Arg(8)->Arg(64)->Arg(512);

static void BM_BigIntGcd(benchmark::State &State) {
  BigInt A = BigInt::pow(BigInt(2 * 3 * 5 * 7),
                         static_cast<unsigned>(State.range(0)));
  BigInt B = BigInt::pow(BigInt(2 * 3 * 11),
                         static_cast<unsigned>(State.range(0)));
  for (auto _ : State)
    benchmark::DoNotOptimize(BigInt::gcd(A, B));
}
BENCHMARK(BM_BigIntGcd)->Arg(8)->Arg(64);

static void BM_RationalConvex(benchmark::State &State) {
  // The inner operation of every probabilistic-choice leaf merge.
  Rational R(1, 3), P(999, 1000), Q(1, 1000);
  for (auto _ : State)
    benchmark::DoNotOptimize(R * P + (Rational(1) - R) * Q);
}
BENCHMARK(BM_RationalConvex);

static void BM_RationalLongProduct(benchmark::State &State) {
  // Failure chains multiply many (1 - 1/1000) factors.
  for (auto _ : State) {
    Rational Acc(1);
    for (int I = 0; I < State.range(0); ++I)
      Acc *= Rational(999, 1000);
    benchmark::DoNotOptimize(Acc);
  }
}
BENCHMARK(BM_RationalLongProduct)->Arg(16)->Arg(128);

static void BM_RationalToDouble(benchmark::State &State) {
  Rational Tiny = Rational(1);
  for (int I = 0; I < 20; ++I)
    Tiny *= Rational(1, 1000);
  for (auto _ : State)
    benchmark::DoNotOptimize(Tiny.toDouble());
}
BENCHMARK(BM_RationalToDouble);

BENCHMARK_MAIN();
