//===----------------------------------------------------------------------===//
///
/// \file
/// §2 quantitative claims, regenerated: delivery probabilities of the
/// naive and resilient schemes under f0/f1/f2, the teleport equivalences,
/// and the refinement chain. Everything is computed with the exact engine,
/// so the printed values must equal the paper's exactly.
///
//===----------------------------------------------------------------------===//

#include "analysis/Verifier.h"
#include "routing/Routing.h"
#include "support/Timer.h"

#include <cstdio>

using namespace mcnk;

int main() {
  std::printf("=== §2 running example: paper-vs-measured ===\n\n");
  WallTimer Total;
  ast::Context Ctx;
  routing::TriangleExample Ex = routing::buildTriangleExample(Ctx);
  analysis::Verifier V;

  fdd::FddRef Tele = V.compile(Ex.Teleport);
  struct Row {
    const char *Name;
    const ast::Node *Program;
    const char *PaperDelivery;
  };
  Row Rows[] = {
      {"M(p,t,f0) ", Ex.NaiveF0, "1"},
      {"M(p,t,f1) ", Ex.NaiveF1, "3/4"},
      {"M(p,t,f2) ", Ex.NaiveF2, "4/5  (80%)"},
      {"M(p^,t,f0)", Ex.ResilientF0, "1"},
      {"M(p^,t,f1)", Ex.ResilientF1, "1  (1-resilient)"},
      {"M(p^,t,f2)", Ex.ResilientF2, "24/25 (96%)"},
  };
  Packet In = Ex.ingressPacket(Ctx);
  std::printf("%-12s %-12s %-20s %s\n", "model", "measured", "paper",
              "== teleport");
  for (const Row &R : Rows) {
    fdd::FddRef Ref = V.compile(R.Program);
    Rational D = V.deliveryProbability(Ref, In);
    std::printf("%-12s %-12s %-20s %s\n", R.Name, D.toString().c_str(),
                R.PaperDelivery,
                V.equivalent(Ref, Tele) ? "yes" : "no");
  }

  std::printf("\nrefinement chain (paper: drop < M(p,t,f2) < M(p^,t,f2) "
              "< teleport):\n");
  fdd::FddRef N2 = V.compile(Ex.NaiveF2);
  fdd::FddRef R2 = V.compile(Ex.ResilientF2);
  std::printf("  drop < naive:        %s\n",
              V.strictlyRefines(V.compile(Ctx.drop()), N2) ? "yes" : "NO");
  std::printf("  naive < resilient:   %s\n",
              V.strictlyRefines(N2, R2) ? "yes" : "NO");
  std::printf("  resilient < teleport:%s\n",
              V.strictlyRefines(R2, Tele) ? " yes" : " NO");
  std::printf("\ntotal time: %.3f s\n", Total.elapsed());
  return 0;
}
