//===----------------------------------------------------------------------===//
///
/// \file
/// Shared helpers for the figure-reproduction harnesses: environment
/// knobs, wall-clock timing with per-point budgets, and table printing.
///
//===----------------------------------------------------------------------===//

#ifndef MCNK_BENCH_BENCHUTIL_H
#define MCNK_BENCH_BENCHUTIL_H

#include "support/Timer.h"

#include <cstdio>
#include <cstdlib>
#include <string>

namespace mcnk {
namespace bench {

/// Reads an unsigned environment knob with a default.
inline unsigned envUnsigned(const char *Name, unsigned Default) {
  const char *Value = std::getenv(Name);
  if (!Value || !*Value)
    return Default;
  return static_cast<unsigned>(std::strtoul(Value, nullptr, 10));
}

/// Reads a floating-point environment knob with a default.
inline double envDouble(const char *Name, double Default) {
  const char *Value = std::getenv(Name);
  if (!Value || !*Value)
    return Default;
  return std::strtod(Value, nullptr);
}

/// A benchmark series that stops reporting once a point exceeds its time
/// budget (the per-tool cutoff used in Figs 7 and 10).
class BudgetedSeries {
public:
  explicit BudgetedSeries(double BudgetSeconds)
      : Budget(BudgetSeconds) {}

  bool alive() const { return Alive; }

  /// Retires the series unconditionally (e.g. a tool-internal budget was
  /// exhausted mid-measurement, so the next point would never finish).
  void kill() { Alive = false; }

  /// Runs \p Body if the series is still alive; returns the measured
  /// seconds (negative when the series is dead). Kills the series when
  /// the measurement goes over budget.
  template <typename Fn> double measure(Fn &&Body) {
    if (!Alive)
      return -1.0;
    WallTimer Timer;
    Body();
    double Elapsed = Timer.elapsed();
    if (Elapsed > Budget)
      Alive = false;
    return Elapsed;
  }

private:
  double Budget;
  bool Alive = true;
};

/// Prints a seconds cell, or "-" for a dead series.
inline void printCell(double Seconds) {
  if (Seconds < 0)
    std::printf("  %10s", "-");
  else
    std::printf("  %10.3f", Seconds);
}

} // namespace bench
} // namespace mcnk

#endif // MCNK_BENCH_BENCHUTIL_H
