//===----------------------------------------------------------------------===//
///
/// \file
/// Figure 8: speedup of the parallelizing backend. The per-switch `case`
/// construct compiles each switch program on the verifier's persistent
/// worker-pool engine (one manager per task) and merges the portable
/// results with a log-depth pairwise tree reduction — the single-machine
/// analogue of the paper's map-reduce cluster backend. Reports compile
/// time and speedup over the serial compiler for increasing worker counts.
///
/// NOTE: the paper measured 16-core machines (and a 24-machine cluster);
/// on hosts with few cores the attainable speedup is bounded by the
/// hardware and the numbers here degenerate gracefully (the emitted JSON
/// records host concurrency so trajectory points stay interpretable).
/// Knobs: MCNK_FIG8_P (default 8), MCNK_FIG8_MAXTHREADS (default 8),
/// MCNK_FIG8_JSON (write machine-readable results to this path).
///
//===----------------------------------------------------------------------===//

#include "BenchUtil.h"
#include "analysis/Verifier.h"
#include "routing/Routing.h"

#include <cstdio>
#include <string>
#include <thread>
#include <vector>

using namespace mcnk;
using namespace mcnk::bench;
using namespace mcnk::routing;

namespace {

struct Row {
  unsigned Threads;
  double Seconds;
  double Speedup;
};

void writeJson(const char *Path, unsigned P, unsigned MaxThreads,
               const std::vector<Row> &Rows) {
  std::FILE *Out = std::fopen(Path, "w");
  if (!Out) {
    std::fprintf(stderr, "fig08: cannot write '%s'\n", Path);
    return;
  }
  std::fprintf(Out, "{\n");
  std::fprintf(Out, "  \"name\": \"fig08_parallel_speedup\",\n");
  std::fprintf(Out, "  \"model\": \"AB FatTree p=%u, F10_3,5, iid link "
                    "failures 1/1000, Direct solver\",\n", P);
  std::fprintf(Out, "  \"engine\": \"persistent nestable ThreadPool, "
                    "pairwise tree reduction\",\n");
  std::fprintf(Out, "  \"fat_tree_p\": %u,\n", P);
  std::fprintf(Out, "  \"max_threads\": %u,\n", MaxThreads);
  std::fprintf(Out, "  \"host_hardware_concurrency\": %u,\n",
               std::thread::hardware_concurrency());
  std::fprintf(Out, "  \"rows\": [\n");
  for (std::size_t I = 0; I < Rows.size(); ++I)
    std::fprintf(Out,
                 "    {\"threads\": %u, \"seconds\": %.6f, "
                 "\"speedup\": %.3f}%s\n",
                 Rows[I].Threads, Rows[I].Seconds, Rows[I].Speedup,
                 I + 1 < Rows.size() ? "," : "");
  std::fprintf(Out, "  ]\n}\n");
  std::fclose(Out);
  std::printf("wrote %s\n", Path);
}

} // namespace

int main() {
  unsigned P = envUnsigned("MCNK_FIG8_P", 8);
  unsigned MaxThreads = envUnsigned("MCNK_FIG8_MAXTHREADS", 8);
  std::printf("=== Fig 8: parallel speedup (FatTree p = %u, F10_3,5 with "
              "failures) ===\n", P);
  std::printf("host hardware concurrency: %u\n\n",
              std::thread::hardware_concurrency());

  topology::FatTreeLayout L;
  topology::makeAbFatTree(P, L);
  ModelOptions O;
  O.RoutingScheme = Scheme::F1035;
  O.Failures = FailureModel::iid(Rational(1, 1000));

  std::printf("%8s  %10s  %8s\n", "threads", "seconds", "speedup");
  std::vector<Row> Rows;
  double Baseline = -1.0;
  for (unsigned Threads = 1; Threads <= MaxThreads; Threads *= 2) {
    ast::Context Ctx;
    NetworkModel M = buildFatTreeModel(L, O, Ctx);
    analysis::Verifier V(markov::SolverKind::Direct);
    // One persistent pool serves the whole compile (and any later ones on
    // this verifier); at 1 thread the serial compiler is the baseline.
    WallTimer T;
    fdd::FddRef Ref = V.compile(M.Program, /*Parallel=*/Threads > 1,
                                Threads);
    (void)Ref;
    double Elapsed = T.elapsed();
    if (Baseline < 0)
      Baseline = Elapsed;
    double Speedup = Baseline / Elapsed;
    Rows.push_back({Threads, Elapsed, Speedup});
    std::printf("%8u  %10.3f  %7.2fx\n", Threads, Elapsed, Speedup);
    std::fflush(stdout);
  }

  if (const char *Json = std::getenv("MCNK_FIG8_JSON"))
    if (*Json)
      writeJson(Json, P, MaxThreads, Rows);
  return 0;
}
