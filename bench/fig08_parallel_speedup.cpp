//===----------------------------------------------------------------------===//
///
/// \file
/// Figure 8: speedup of the parallelizing backend. The per-switch `case`
/// construct compiles each switch program on a separate worker manager and
/// merges the portable results — the single-machine analogue of the
/// paper's map-reduce cluster backend. Reports compile time and speedup
/// for increasing worker counts.
///
/// NOTE: the paper measured 16-core machines (and a 24-machine cluster);
/// on hosts with few cores the attainable speedup is bounded by the
/// hardware and the numbers here degenerate gracefully (documented in
/// EXPERIMENTS.md). Knobs: MCNK_FIG8_P (default 8), MCNK_FIG8_MAXTHREADS
/// (default 8).
///
//===----------------------------------------------------------------------===//

#include "BenchUtil.h"
#include "analysis/Verifier.h"
#include "routing/Routing.h"

#include <cstdio>
#include <thread>

using namespace mcnk;
using namespace mcnk::bench;
using namespace mcnk::routing;

int main() {
  unsigned P = envUnsigned("MCNK_FIG8_P", 8);
  unsigned MaxThreads = envUnsigned("MCNK_FIG8_MAXTHREADS", 8);
  std::printf("=== Fig 8: parallel speedup (FatTree p = %u, F10_3,5 with "
              "failures) ===\n", P);
  std::printf("host hardware concurrency: %u\n\n",
              std::thread::hardware_concurrency());

  topology::FatTreeLayout L;
  topology::makeAbFatTree(P, L);
  ModelOptions O;
  O.RoutingScheme = Scheme::F1035;
  O.Failures = FailureModel::iid(Rational(1, 1000));

  std::printf("%8s  %10s  %8s\n", "threads", "seconds", "speedup");
  double Baseline = -1.0;
  for (unsigned Threads = 1; Threads <= MaxThreads; Threads *= 2) {
    ast::Context Ctx;
    NetworkModel M = buildFatTreeModel(L, O, Ctx);
    analysis::Verifier V(markov::SolverKind::Direct);
    WallTimer T;
    fdd::FddRef Ref = V.compile(M.Program, /*Parallel=*/Threads > 1,
                                Threads);
    (void)Ref;
    double Elapsed = T.elapsed();
    if (Baseline < 0)
      Baseline = Elapsed;
    std::printf("%8u  %10.3f  %7.2fx\n", Threads, Elapsed,
                Baseline / Elapsed);
    std::fflush(stdout);
  }
  return 0;
}
