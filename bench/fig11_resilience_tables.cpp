//===----------------------------------------------------------------------===//
///
/// \file
/// Figure 11 (b) and (c): the F10 resilience and refinement tables on the
/// AB FatTree with p = 4, computed with the exact engine so ✓/✗ and ≡/<
/// are decided, not approximated.
///
///   (b) is M̂(F10_x, f_k) ≡ teleport for k ∈ {0..4, ∞}?
///   (c) how do the schemes compare pairwise under f_k?
///
/// Expected pattern (paper): F10_0 is 0-resilient, F10_3 is 2-resilient,
/// F10_3,5 is 3-resilient; refinements become strict exactly when the
/// weaker scheme stops being fully resilient.
///
//===----------------------------------------------------------------------===//

#include "BenchUtil.h"
#include "analysis/Verifier.h"
#include "routing/Routing.h"
#include "support/Timer.h"

#include <algorithm>
#include <cstdio>
#include <vector>

using namespace mcnk;
using namespace mcnk::routing;

namespace {

struct CompiledRow {
  fdd::FddRef F100, F103, F1035, Teleport;
};

CompiledRow compileForK(analysis::Verifier &V, unsigned K, bool Infinite) {
  // One shared context per row so the three schemes erase identical field
  // sets and are comparable.
  static std::vector<std::unique_ptr<ast::Context>> Keep;
  Keep.push_back(std::make_unique<ast::Context>());
  ast::Context &Ctx = *Keep.back();

  FailureModel F = !Infinite && K == 0
                       ? FailureModel::none()
                       : (Infinite ? FailureModel::iid(Rational(1, 100))
                                   : FailureModel::bounded(Rational(1, 100),
                                                           K));
  topology::FatTreeLayout L;
  topology::makeAbFatTree(4, L);
  CompiledRow Row;
  const ast::Node *Tele = nullptr;
  for (Scheme S : {Scheme::F100, Scheme::F103, Scheme::F1035}) {
    ModelOptions O;
    O.RoutingScheme = S;
    O.Failures = F;
    NetworkModel M = buildFatTreeModel(L, O, Ctx);
    fdd::FddRef Ref = V.compile(M.Program);
    if (S == Scheme::F100)
      Row.F100 = Ref;
    else if (S == Scheme::F103)
      Row.F103 = Ref;
    else
      Row.F1035 = Ref;
    Tele = M.Teleport;
  }
  Row.Teleport = V.compile(Tele);
  return Row;
}

const char *order(analysis::Verifier &V, fdd::FddRef A, fdd::FddRef B) {
  if (V.equivalent(A, B))
    return "=";
  if (V.refines(A, B))
    return "<";
  return "?";
}

} // namespace

int main() {
  // MCNK_FIG11_MAXK bounds the failure-count sweep (5 = the unbounded f∞
  // row, also the hard cap — larger values would print bounded rows
  // after the f∞ one); MCNK_GOLDEN=1 drops the timing line so the ctest
  // golden smoke test can diff the (fully deterministic) tables.
  unsigned MaxK = std::min(bench::envUnsigned("MCNK_FIG11_MAXK", 5), 5u);
  bool Golden = bench::envUnsigned("MCNK_GOLDEN", 0) != 0;
  std::printf("=== Fig 11(b,c): F10 resilience on AB FatTree p=4 "
              "(exact) ===\n\n");
  WallTimer Total;
  analysis::Verifier V; // Exact engine.

  std::printf("(b) M(F10_x, f_k) == teleport?\n");
  std::printf("  %-4s %-8s %-8s %-8s\n", "k", "F10_0", "F10_3", "F10_3,5");
  std::vector<CompiledRow> Rows;
  for (unsigned K = 0; K <= MaxK; ++K) {
    bool Infinite = K == 5;
    CompiledRow Row = compileForK(V, K, Infinite);
    Rows.push_back(Row);
    auto Mark = [&](fdd::FddRef Ref) {
      return V.equivalent(Ref, Row.Teleport) ? "yes" : "no";
    };
    std::printf("  %-4s %-8s %-8s %-8s\n",
                Infinite ? "inf" : std::to_string(K).c_str(),
                Mark(Row.F100), Mark(Row.F103), Mark(Row.F1035));
    std::fflush(stdout);
  }

  std::printf("\n(c) pairwise comparison under f_k "
              "(= equivalent, < strictly refines):\n");
  std::printf("  %-4s %-18s %-18s %-18s\n", "k", "F10_0 vs F10_3",
              "F10_3 vs F10_3,5", "F10_3,5 vs tele");
  for (unsigned K = 0; K <= MaxK; ++K) {
    const CompiledRow &Row = Rows[K];
    std::printf("  %-4s %-18s %-18s %-18s\n",
                K == 5 ? "inf" : std::to_string(K).c_str(),
                order(V, Row.F100, Row.F103),
                order(V, Row.F103, Row.F1035),
                order(V, Row.F1035, Row.Teleport));
    std::fflush(stdout);
  }
  if (!Golden)
    std::printf("\ntotal time: %.3f s\n", Total.elapsed());
  return 0;
}
