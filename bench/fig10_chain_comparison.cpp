//===----------------------------------------------------------------------===//
///
/// \file
/// Figure 10: scalability on the chain topology — the tool comparison.
/// Computes the H1 -> H2 delivery probability on chains of K diamonds
/// (4K switches, lower links failing at 1/1000) with every engine:
///
///   bayonet   — exhaustive exact inference (the Bayonet/PSI stand-in)
///   prism ex  — hand-written DTMC over sw, exact engine
///   prism ap  — hand-written DTMC, iterative engine
///   ppnk ex   — ProbNetKAT -> PRISM translation, exact engine
///   ppnk ap   — translation, iterative engine
///   pnk       — native FDD backend (direct sparse LU)
///   pnk par   — native backend with parallel case compilation
///
/// Shape expected from the paper: bayonet dies orders of magnitude before
/// the rest; the native backend scales furthest. Per-point budget retires
/// series (MCNK_TIME_LIMIT, default 10s); sweep capped by MCNK_FIG10_MAXK
/// (default 2048 diamonds = 8192 switches).
///
//===----------------------------------------------------------------------===//

#include "BenchUtil.h"
#include "analysis/Verifier.h"
#include "baseline/Exhaustive.h"
#include "prism/Checker.h"
#include "prism/Translate.h"
#include "routing/Routing.h"

#include <cstdio>
#include <sstream>

using namespace mcnk;
using namespace mcnk::bench;

namespace {

/// The Fig 10 "hand-written PRISM" model: a direct DTMC over switch ids,
/// no program counter. State Delivered = 4K+1, Dropped = 4K+2.
std::string handWrittenChain(unsigned K) {
  topology::ChainLayout L;
  L.K = K;
  unsigned Delivered = L.numSwitches() + 1;
  unsigned Dropped = L.numSwitches() + 2;
  std::ostringstream Out;
  Out << "dtmc\nmodule chain\n";
  Out << "  sw : [1.." << Dropped << "] init 1;\n";
  for (unsigned D = 0; D < K; ++D) {
    Out << "  [] sw=" << L.split(D) << " -> 1/2 : (sw'=" << L.upper(D)
        << ") + 1/2 : (sw'=" << L.lower(D) << ");\n";
    Out << "  [] sw=" << L.upper(D) << " -> 1 : (sw'=" << L.join(D)
        << ");\n";
    Out << "  [] sw=" << L.lower(D) << " -> 999/1000 : (sw'=" << L.join(D)
        << ") + 1/1000 : (sw'=" << Dropped << ");\n";
    unsigned Next = D + 1 < K ? L.split(D + 1) : Delivered;
    Out << "  [] sw=" << L.join(D) << " -> 1 : (sw'=" << Next << ");\n";
  }
  Out << "  [] sw=" << Delivered << " -> 1 : true;\n";
  Out << "  [] sw=" << Dropped << " -> 1 : true;\n";
  Out << "endmodule\n";
  return Out.str();
}

Rational runPrismSource(const std::string &Source, const std::string &Goal,
                        markov::SolverKind Solver) {
  prism::Model M;
  prism::GuardExpr G;
  std::string Error;
  if (!prism::parseModel(Source, M, Error) ||
      !prism::parseGuard(Goal, M, G, Error)) {
    std::fprintf(stderr, "prism parse error: %s\n", Error.c_str());
    return Rational();
  }
  prism::CheckResult CR;
  if (!prism::checkReachability(M, G, Solver, CR, Error))
    std::fprintf(stderr, "prismlite error: %s\n", Error.c_str());
  return CR.Probability;
}

/// MCNK_GOLDEN=1: replace the timing table with the deterministic table
/// values — the exact H1 -> H2 delivery probability as computed by every
/// engine, next to the closed form (1 - pfail/2)^K. The ctest golden
/// smoke test diffs this output against tests/golden/fig10.txt.
int runGolden(unsigned MaxK, const Rational &PFail) {
  std::printf("=== Fig 10 golden: chain delivery probabilities "
              "(pfail = 1/1000) ===\n");
  std::printf("%6s  %-14s %-14s %-14s %-14s %-14s %10s\n", "K", "closed",
              "bayonet", "prism ex", "ppnk ex", "pnk ex", "prism ap");
  for (unsigned K = 1; K <= MaxK; K *= 2) {
    topology::ChainLayout L;
    topology::makeChain(K, L);
    Rational Closed(1);
    Rational PerDiamond = Rational(1) - PFail / Rational(2);
    for (unsigned I = 0; I < K; ++I)
      Closed *= PerDiamond;

    ast::Context Ctx;
    routing::NetworkModel M = routing::buildChainModel(L, PFail, Ctx);
    Packet In = M.ingressPacket(0, Ctx);

    baseline::InferenceOptions BO;
    BO.LoopBound = 6 * K + 4;
    Rational Bayonet = baseline::infer(M.Program, In, BO).deliveredMass();

    std::string Hand = handWrittenChain(K);
    std::string Goal = "sw=" + std::to_string(L.numSwitches() + 1);
    Rational PrismEx =
        runPrismSource(Hand, Goal, markov::SolverKind::Exact);
    Rational PrismAp =
        runPrismSource(Hand, Goal, markov::SolverKind::Iterative);

    prism::Translation Tr = prism::translate(Ctx, M.Program, In);
    Rational PpnkEx =
        runPrismSource(Tr.Source, Tr.DoneGuard, markov::SolverKind::Exact);

    analysis::Verifier V; // Exact engine.
    Rational Pnk = V.deliveryProbability(V.compile(M.Program), In);

    std::printf("%6u  %-14s %-14s %-14s %-14s %-14s %10.6f\n", K,
                Closed.toString().c_str(), Bayonet.toString().c_str(),
                PrismEx.toString().c_str(), PpnkEx.toString().c_str(),
                Pnk.toString().c_str(), PrismAp.toDouble());
  }
  return 0;
}

} // namespace

int main() {
  unsigned MaxK = envUnsigned("MCNK_FIG10_MAXK", 2048);
  const Rational PFailGolden(1, 1000);
  if (envUnsigned("MCNK_GOLDEN", 0))
    return runGolden(std::min(MaxK, 16u), PFailGolden);
  double Limit = envDouble("MCNK_TIME_LIMIT", 10.0);
  std::printf("=== Fig 10: chain topology tool comparison "
              "(pfail = 1/1000) ===\n");
  std::printf("per-point budget %.0fs; '-' = series retired\n\n", Limit);
  std::printf("%6s %9s  %10s  %10s  %10s  %10s  %10s  %10s  %10s\n", "K",
              "switches", "bayonet", "prism ex", "prism ap", "ppnk ex",
              "ppnk ap", "pnk", "pnk par");

  BudgetedSeries Bayonet(Limit), PrismEx(Limit), PrismAp(Limit),
      PpnkEx(Limit), PpnkAp(Limit), Pnk(Limit), PnkPar(Limit);
  const Rational PFail(1, 1000);

  for (unsigned K = 1; K <= MaxK; K *= 2) {
    topology::ChainLayout L;
    topology::makeChain(K, L);
    std::printf("%6u %9u", K, L.numSwitches());

    bool BayonetExhausted = false;
    printCell(Bayonet.measure([&] {
      ast::Context Ctx;
      routing::NetworkModel M = routing::buildChainModel(L, PFail, Ctx);
      baseline::InferenceOptions O;
      O.LoopBound = 6 * K + 4;
      // Exponential path growth would blow far past any wall-clock
      // budget at the next point; a path budget (the analogue of the
      // paper's memory limit on Bayonet) bounds the attempt.
      O.PathBudget = static_cast<std::size_t>(Limit) * 300000;
      baseline::InferenceResult R =
          baseline::infer(M.Program, M.ingressPacket(0, Ctx), O);
      BayonetExhausted = R.BudgetExhausted;
    }));
    if (BayonetExhausted)
      Bayonet.kill();

    std::string Hand = handWrittenChain(K);
    std::string Goal = "sw=" + std::to_string(L.numSwitches() + 1);
    printCell(PrismEx.measure(
        [&] { runPrismSource(Hand, Goal, markov::SolverKind::Exact); }));
    printCell(PrismAp.measure(
        [&] { runPrismSource(Hand, Goal, markov::SolverKind::Iterative); }));

    printCell(PpnkEx.measure([&] {
      ast::Context Ctx;
      routing::NetworkModel M = routing::buildChainModel(L, PFail, Ctx);
      prism::Translation Tr =
          prism::translate(Ctx, M.Program, M.ingressPacket(0, Ctx));
      runPrismSource(Tr.Source, Tr.DoneGuard, markov::SolverKind::Exact);
    }));
    printCell(PpnkAp.measure([&] {
      ast::Context Ctx;
      routing::NetworkModel M = routing::buildChainModel(L, PFail, Ctx);
      prism::Translation Tr =
          prism::translate(Ctx, M.Program, M.ingressPacket(0, Ctx));
      runPrismSource(Tr.Source, Tr.DoneGuard,
                     markov::SolverKind::Iterative);
    }));

    printCell(Pnk.measure([&] {
      ast::Context Ctx;
      routing::NetworkModel M = routing::buildChainModel(L, PFail, Ctx);
      analysis::Verifier V(markov::SolverKind::Direct);
      V.compile(M.Program);
    }));
    printCell(PnkPar.measure([&] {
      ast::Context Ctx;
      routing::NetworkModel M = routing::buildChainModel(L, PFail, Ctx);
      analysis::Verifier V(markov::SolverKind::Direct);
      V.compile(M.Program, /*Parallel=*/true, /*Threads=*/4);
    }));
    std::printf("\n");
    std::fflush(stdout);
    if (!Bayonet.alive() && !PrismEx.alive() && !PrismAp.alive() &&
        !PpnkEx.alive() && !PpnkAp.alive() && !Pnk.alive() &&
        !PnkPar.alive())
      break;
  }
  return 0;
}
