//===----------------------------------------------------------------------===//
///
/// \file
/// Ablation: the three absorbing-chain engines behind the while-loop
/// solver (docs/ARCHITECTURE.md S7) — exact sparse Gauss-Jordan over rationals,
/// direct sparse LU over doubles (the paper's UMFPACK configuration), and
/// Neumann iteration (PRISM-style). Measures solve time on the chain and
/// FatTree models and verifies the engines agree.
///
//===----------------------------------------------------------------------===//

#include "BenchUtil.h"
#include "analysis/Verifier.h"
#include "routing/Routing.h"

#include <cmath>
#include <cstdio>

using namespace mcnk;
using namespace mcnk::bench;
using namespace mcnk::routing;

namespace {

/// Compiles the model with the given solver; returns (seconds, delivery).
std::pair<double, double> run(markov::SolverKind Kind, bool FatTree,
                              unsigned Size) {
  ast::Context Ctx;
  NetworkModel M;
  if (FatTree) {
    topology::FatTreeLayout L;
    topology::makeAbFatTree(Size, L);
    ModelOptions O;
    O.RoutingScheme = Scheme::F103;
    O.Failures = FailureModel::iid(Rational(1, 100));
    M = buildFatTreeModel(L, O, Ctx);
  } else {
    topology::ChainLayout L;
    topology::makeChain(Size, L);
    M = buildChainModel(L, Rational(1, 1000), Ctx);
  }
  analysis::Verifier V(Kind);
  WallTimer T;
  fdd::FddRef Ref = V.compile(M.Program);
  double Elapsed = T.elapsed();
  double Delivery =
      V.deliveryProbability(Ref, M.ingressPacket(FatTree ? 2 : 0, Ctx))
          .toDouble();
  return {Elapsed, Delivery};
}

void table(const char *Title, bool FatTree,
           const std::vector<unsigned> &Sizes) {
  std::printf("%s\n", Title);
  std::printf("  %8s  %10s  %10s  %10s  %10s\n", "size", "exact", "direct",
              "iterative", "agree");
  for (unsigned Size : Sizes) {
    auto [TE, DE] = run(markov::SolverKind::Exact, FatTree, Size);
    auto [TD, DD] = run(markov::SolverKind::Direct, FatTree, Size);
    auto [TI, DI] = run(markov::SolverKind::Iterative, FatTree, Size);
    bool Agree =
        std::fabs(DE - DD) < 1e-9 && std::fabs(DE - DI) < 1e-8;
    std::printf("  %8u  %10.3f  %10.3f  %10.3f  %10s\n", Size, TE, TD, TI,
                Agree ? "yes" : "NO");
    std::fflush(stdout);
  }
  std::printf("\n");
}

} // namespace

int main() {
  std::printf("=== Ablation: loop-solver engines "
              "(exact vs direct LU vs Neumann) ===\n\n");
  unsigned MaxChain = envUnsigned("MCNK_ABL_MAXCHAIN", 256);
  std::vector<unsigned> ChainSizes;
  for (unsigned K = 16; K <= MaxChain; K *= 4)
    ChainSizes.push_back(K);
  table("chain model (K diamonds):", /*FatTree=*/false, ChainSizes);
  table("AB FatTree model (parameter p):", /*FatTree=*/true, {4, 6});
  return 0;
}
