//===----------------------------------------------------------------------===//
///
/// \file
/// Serving-layer throughput (docs/ARCHITECTURE.md S16): replays the
/// scenario registry through an in-process daemon Session twice — a
/// *cold* run against a fresh persistent store, then a *warm* run after a
/// simulated restart (new Service, same store file) — and reports
/// requests/second for each. The warm run must answer from the disk
/// store: the bench asserts entries were warmed, compile requests hit the
/// cache, nothing new was appended, and every response line is
/// byte-identical to the cold run's. Knobs:
///   MCNK_SERVE_STORE   store file path (default /tmp/mcnk_serve_tp.store)
///   MCNK_SERVE_REPEAT  query repeats per scenario        (default 4)
///   MCNK_SERVE_JSON    write the trajectory point here
///
//===----------------------------------------------------------------------===//

#include "BenchUtil.h"
#include "ast/Printer.h"
#include "gen/Scenario.h"
#include "parser/Parser.h"
#include "serve/Server.h"
#include "support/Timer.h"

#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

using namespace mcnk;

namespace {

/// One scenario's request lines: compile once, then the batched queries.
std::vector<std::string> requestLines(ast::Context &Ctx,
                                      const gen::Scenario &S,
                                      unsigned Repeat) {
  std::vector<std::string> Lines;
  const std::string Printed = ast::print(S.Program, Ctx.fields());

  // Inputs travel by field NAME, restricted to fields the printed
  // program mentions — the served side interns only those, rejects
  // unknown names, and an unmentioned field cannot influence an answer.
  ast::Context ServedCtx;
  parser::ParseResult Parsed = parser::parseProgram(Printed, ServedCtx);
  if (!Parsed.ok())
    return Lines;
  serve::Json Inputs = serve::Json::array();
  for (const Packet &In : S.Inputs) {
    serve::Json Obj = serve::Json::object();
    for (std::size_t F = 0; F < ServedCtx.fields().numFields(); ++F) {
      const std::string &Name =
          ServedCtx.fields().name(static_cast<FieldId>(F));
      FieldId Id = Ctx.fields().lookup(Name);
      if (Id != FieldTable::NotFound && Id < In.numFields())
        Obj.set(Name, serve::Json::integer(In.get(Id)));
    }
    Inputs.push(std::move(Obj));
  }

  serve::Json Compile = serve::Json::object();
  Compile.set("verb", serve::Json::string("compile"));
  Compile.set("program", serve::Json::string(Printed));
  Compile.set("solver", serve::Json::string("exact"));
  Lines.push_back(Compile.dump());

  serve::Json Delivery = serve::Json::object();
  Delivery.set("verb", serve::Json::string("query"));
  Delivery.set("program", serve::Json::string(Printed));
  Delivery.set("query", serve::Json::string("delivery"));
  Delivery.set("inputs", Inputs);
  for (unsigned R = 0; R < Repeat; ++R)
    Lines.push_back(Delivery.dump());

  if (S.HopField != FieldTable::NotFound) {
    serve::Json Hop = serve::Json::object();
    Hop.set("verb", serve::Json::string("query"));
    Hop.set("program", serve::Json::string(Printed));
    Hop.set("query", serve::Json::string("hop-stats"));
    Hop.set("inputs", Inputs);
    Hop.set("hopField",
            serve::Json::string(Ctx.fields().name(S.HopField)));
    Lines.push_back(Hop.dump());
  }
  return Lines;
}

struct PhaseResult {
  double Seconds = 0;
  std::size_t Requests = 0;
  std::size_t WarmedEntries = 0;
  std::size_t StoreAppends = 0;
  uint64_t CacheHits = 0;
  std::vector<std::string> Responses;
  bool Ok = false;
};

/// Runs every request line through one fresh Service + Session over the
/// given store file. The Service dies at the end, as in a restart.
PhaseResult runPhase(const std::string &StorePath,
                     const std::vector<std::string> &Lines) {
  PhaseResult Out;
  serve::Service::Options Opts;
  Opts.StorePath = StorePath;
  Opts.Threads = 1; // Serial compile: the bench measures serving, not
                    // the parallel backend (fig08 covers that).
  std::string Error;
  std::unique_ptr<serve::Service> Svc =
      serve::Service::create(Opts, &Error);
  if (!Svc) {
    std::fprintf(stderr, "error: %s\n", Error.c_str());
    return Out;
  }
  Out.WarmedEntries = Svc->warmedEntries();

  serve::Session Sess(*Svc);
  Out.Responses.reserve(Lines.size());
  WallTimer Timer;
  for (const std::string &Line : Lines)
    Out.Responses.push_back(Sess.handleLine(Line));
  Out.Seconds = Timer.elapsed();
  Out.Requests = Lines.size();
  Out.StoreAppends = Svc->store() ? Svc->store()->stats().Appends : 0;
  Out.CacheHits = Svc->cache().stats().Hits;
  Out.Ok = Svc->errors() == 0;
  if (!Out.Ok)
    std::fprintf(stderr,
                 "error: %llu request(s) failed in this phase\n",
                 static_cast<unsigned long long>(Svc->errors()));
  return Out;
}

} // namespace

int main() {
  const char *StoreEnv = std::getenv("MCNK_SERVE_STORE");
  const std::string StorePath =
      StoreEnv && *StoreEnv ? StoreEnv : "/tmp/mcnk_serve_tp.store";
  const unsigned Repeat = bench::envUnsigned("MCNK_SERVE_REPEAT", 4);

  // A fresh store: cold means cold.
  std::remove(StorePath.c_str());

  std::vector<gen::ScenarioSpec> Registry = gen::buildRegistry();
  std::vector<std::unique_ptr<ast::Context>> Contexts;
  std::vector<std::string> Lines;
  std::size_t NumScenarios = 0;
  for (const gen::ScenarioSpec &Spec : Registry) {
    Contexts.push_back(std::make_unique<ast::Context>());
    gen::Scenario S = Spec.Build(*Contexts.back());
    std::vector<std::string> L = requestLines(*Contexts.back(), S, Repeat);
    Lines.insert(Lines.end(), L.begin(), L.end());
    ++NumScenarios;
  }

  std::printf("=== mcnk_serve throughput (registry replay, exact "
              "solver) ===\n\n");
  std::printf("%zu scenarios, %zu requests per phase, store %s\n\n",
              NumScenarios, Lines.size(), StorePath.c_str());

  PhaseResult Cold = runPhase(StorePath, Lines);
  PhaseResult Warm = runPhase(StorePath, Lines);
  if (!Cold.Ok || !Warm.Ok)
    return 1;

  // The restart contract: the warm service loaded the cold run's
  // compiles from disk, answered from them, and wrote nothing new.
  bool Warmed = Warm.WarmedEntries > 0 && Warm.CacheHits > 0 &&
                Warm.StoreAppends == 0 && Cold.StoreAppends > 0;
  bool Identical = Cold.Responses == Warm.Responses;
  if (!Warmed)
    std::fprintf(stderr,
                 "error: warm phase did not answer from the disk store "
                 "(warmed %zu, hits %llu, appends %zu)\n",
                 Warm.WarmedEntries,
                 static_cast<unsigned long long>(Warm.CacheHits),
                 Warm.StoreAppends);
  if (!Identical)
    std::fprintf(stderr,
                 "error: warm responses differ from cold responses\n");

  double ColdRps = Cold.Seconds > 0 ? Cold.Requests / Cold.Seconds : 0;
  double WarmRps = Warm.Seconds > 0 ? Warm.Requests / Warm.Seconds : 0;
  std::printf("cold: %8.3f s  %10.1f req/s  (%zu store appends)\n",
              Cold.Seconds, ColdRps, Cold.StoreAppends);
  std::printf("warm: %8.3f s  %10.1f req/s  (%zu entries warmed, "
              "%llu cache hits, %zu appends)\n",
              Warm.Seconds, WarmRps, Warm.WarmedEntries,
              static_cast<unsigned long long>(Warm.CacheHits),
              Warm.StoreAppends);
  std::printf("restart speedup %.2fx; responses %s\n",
              Warm.Seconds > 0 ? Cold.Seconds / Warm.Seconds : 0.0,
              Identical ? "byte-identical" : "MISMATCH");

  if (const char *Path = std::getenv("MCNK_SERVE_JSON"); Path && *Path) {
    if (std::FILE *F = std::fopen(Path, "w")) {
      std::fprintf(
          F,
          "{\n"
          "  \"name\": \"serve_throughput\",\n"
          "  \"model\": \"scenario-registry replay through one daemon "
          "session, exact solver, x%u query repeats\",\n"
          "  \"engine\": \"mcnk_serve Session over CompileCache + "
          "persistent CacheStore\",\n"
          "  \"scenarios\": %zu,\n"
          "  \"requests_per_phase\": %zu,\n"
          "  \"cold_seconds\": %.6f,\n"
          "  \"cold_requests_per_second\": %.1f,\n"
          "  \"cold_store_appends\": %zu,\n"
          "  \"warm_seconds\": %.6f,\n"
          "  \"warm_requests_per_second\": %.1f,\n"
          "  \"warm_entries_warmed\": %zu,\n"
          "  \"warm_cache_hits\": %llu,\n"
          "  \"warm_store_appends\": %zu,\n"
          "  \"restart_speedup\": %.3f,\n"
          "  \"responses_identical\": %s\n"
          "}\n",
          Repeat, NumScenarios, Lines.size(), Cold.Seconds, ColdRps,
          Cold.StoreAppends, Warm.Seconds, WarmRps, Warm.WarmedEntries,
          static_cast<unsigned long long>(Warm.CacheHits),
          Warm.StoreAppends,
          Warm.Seconds > 0 ? Cold.Seconds / Warm.Seconds : 0.0,
          Identical ? "true" : "false");
      std::fclose(F);
      std::printf("wrote %s\n", Path);
    } else {
      std::fprintf(stderr, "error: cannot write %s\n", Path);
      return 1;
    }
  }

  return Warmed && Identical ? 0 : 1;
}
