//===----------------------------------------------------------------------===//
///
/// \file
/// Ablation: dynamic domain reduction in the while-loop solver. With
/// hop-local flag re-canonicalization (the default), failure flags stay
/// out of the loop-head state space; without it every flag multiplies the
/// symbolic product by 3 (its domain {0, 1, *}). Both variants are
/// semantically identical — the bench verifies the delivery probabilities
/// match while the chain dimensions diverge.
///
//===----------------------------------------------------------------------===//

#include "analysis/Verifier.h"
#include "routing/Routing.h"
#include "support/Timer.h"

#include <cmath>
#include <cstdio>

using namespace mcnk;
using namespace mcnk::routing;

namespace {

struct Measurement {
  double Seconds;
  double Delivery;
  fdd::LoopSolveStats Stats;
};

Measurement run(bool HopLocal, Scheme S) {
  ast::Context Ctx;
  topology::FatTreeLayout L;
  topology::makeAbFatTree(4, L);
  ModelOptions O;
  O.RoutingScheme = S;
  O.Failures = FailureModel::iid(Rational(1, 50));
  O.HopLocalFlags = HopLocal;
  NetworkModel M = buildFatTreeModel(L, O, Ctx);
  analysis::Verifier V(markov::SolverKind::Direct);
  WallTimer T;
  fdd::FddRef Ref = V.compile(M.Program);
  Measurement Result;
  Result.Seconds = T.elapsed();
  Result.Delivery =
      V.deliveryProbability(Ref, M.ingressPacket(2, Ctx)).toDouble();
  Result.Stats = V.manager().lastLoopStats();
  return Result;
}

} // namespace

int main() {
  std::printf("=== Ablation: hop-local flag reduction (AB FatTree p=4, "
              "iid failures 1/50) ===\n\n");
  std::printf("  %-9s %-10s %10s %12s %12s %10s\n", "scheme", "flags",
              "sym.states", "transient", "Q entries", "seconds");
  for (Scheme S : {Scheme::F100, Scheme::F103, Scheme::F1035}) {
    const char *Name = S == Scheme::F100   ? "F10_0"
                       : S == Scheme::F103 ? "F10_3"
                                           : "F10_3,5";
    Measurement With = run(/*HopLocal=*/true, S);
    Measurement Without = run(/*HopLocal=*/false, S);
    std::printf("  %-9s %-10s %10zu %12zu %12zu %10.3f\n", Name,
                "hop-local", With.Stats.NumStates,
                With.Stats.NumTransient, With.Stats.NumQEntries,
                With.Seconds);
    std::printf("  %-9s %-10s %10zu %12zu %12zu %10.3f\n", "", "global",
                Without.Stats.NumStates, Without.Stats.NumTransient,
                Without.Stats.NumQEntries, Without.Seconds);
    bool Agree = std::fabs(With.Delivery - Without.Delivery) < 1e-9;
    std::printf("  %-9s delivery %.9f vs %.9f -> %s\n\n", "",
                With.Delivery, Without.Delivery,
                Agree ? "agree" : "DISAGREE");
    std::fflush(stdout);
  }
  return 0;
}
