//===----------------------------------------------------------------------===//
///
/// \file
/// Scenario-registry sweep: compiles every scenario the registry
/// enumerates (the same registry that drives the conformance suite and
/// `mcnk fuzz`) with the Direct (sparse-LU) solver and reports compile
/// time, diagram size, loop-chain dimensions, and mean delivery — a
/// one-command overview of how every topology/routing/failure family
/// scales. A second pass (the *cache sweep*) recompiles the registry plus
/// a per-ingress query family twice — cold engine vs a shared
/// CompileCache (ARCHITECTURE S12) — verifies the two passes are
/// reference-equal member by member, and reports the wall-clock speedup
/// (optionally as a BENCH_sweep_cache.json trajectory point). Knobs:
///   MCNK_SWEEP_CHAINK     max chain diamonds        (default 8)
///   MCNK_SWEEP_RINGN      largest ring              (default 10)
///   MCNK_SWEEP_RANDN      random-graph size         (default 8)
///   MCNK_SWEEP_RANDOM     number of random graphs   (default 4)
///   MCNK_SWEEP_FATTREE    include p=4 FatTrees      (default 1)
///   MCNK_SWEEP_TABLE      run the per-scenario table (default 1)
///   MCNK_SWEEP_CACHE      run the cache sweep       (default 1)
///   MCNK_SWEEP_CACHE_JSON write the cache-sweep trajectory point here
///   MCNK_SWEEP_BLOCKED    run the blocked-solver sweep (default 1)
///   MCNK_SWEEP_BLOCKED_JSON write the blocked-sweep trajectory point here
///   MCNK_SWEEP_MODULAR    run the modular-solver sweep (default 1)
///   MCNK_SWEEP_MODULAR_JSON write the modular-sweep trajectory point here
///   MCNK_SWEEP_SIMPLIFY   run the simplify sweep     (default 1)
///   MCNK_SWEEP_SIMPLIFY_JSON write the simplify-sweep trajectory point here
///   MCNK_SWEEP_SLICE      run the slice sweep        (default 1)
///   MCNK_SWEEP_SLICE_JSON write the slice-sweep trajectory point here
///
/// The *simplify sweep* replays the cache sweep's per-ingress family with
/// the S15 verified simplifier (docs/ARCHITECTURE.md S15) in front of
/// every compile — reference equality enforced against the plain sweep —
/// and records the cache-hit-rate and wall-clock delta of the pre-pass.
///
/// The *blocked sweep* recompiles every registry scenario with the Exact
/// solver, monolithic vs block-structured (SCC/DAG elimination with RCM
/// ordering, docs/ARCHITECTURE.md S13), enforces reference equality of
/// the two diagrams, and aggregates wall time plus the elimination-op /
/// fill-in counters of each configuration.
///
/// The *slice sweep* recompiles every registry scenario with the Exact
/// solver under the S17 delivery-observation slice (docs/ARCHITECTURE.md
/// S17) and compares against the plain Exact compile: average delivery
/// must be string-equal as an exact rational, and the sweep reports the
/// wall-clock and FDD-node deltas — the hop-counting families are where
/// the cone of influence sheds the counter field and the diagram shrinks.
///
/// The *modular sweep* recompiles every registry scenario with the
/// multi-prime ModularExact engine (docs/ARCHITECTURE.md S14), enforces
/// reference equality against the Rational Exact engine, and aggregates
/// wall time plus the prime / reconstruction counters — the registry-wide
/// correctness-and-cost picture next to the chain-family showcase in
/// BENCH_solver_modular.json.
///
//===----------------------------------------------------------------------===//

#include "BenchUtil.h"
#include "analysis/Verifier.h"
#include "ast/Deps.h"
#include "ast/Simplify.h"
#include "fdd/CompileCache.h"
#include "fdd/Export.h"
#include "gen/Scenario.h"
#include "routing/Routing.h"
#include "support/Timer.h"
#include "topology/Topology.h"

#include <cstdio>
#include <functional>
#include <string>
#include <vector>

using namespace mcnk;
using namespace mcnk::bench;

namespace {

/// One member of the cache sweep: a named builder producing a guarded
/// program into a caller-owned context.
struct SweepMember {
  std::string Name;
  std::function<const ast::Node *(ast::Context &)> Build;
};

/// The per-ingress reliability-query filter: the conjunction of `f = v`
/// over every field of \p In, in front of the model — the compile-level
/// shape of the paper's per-source queries (Fig 7's per-pair sweeps).
const ast::Node *ingressQuery(ast::Context &Ctx, const gen::Scenario &S,
                              std::size_t InputIdx) {
  const Packet &In = S.Inputs[InputIdx];
  std::vector<const ast::Node *> Tests;
  for (std::size_t F = 0; F < In.numFields(); ++F)
    Tests.push_back(
        Ctx.test(static_cast<FieldId>(F), In.get(static_cast<FieldId>(F))));
  return Ctx.seq(Ctx.seqAll(Tests), S.Program);
}

/// The sweep family list: one per-ingress reliability-query program per
/// (registry scenario, ingress) pair. Members of one scenario differ only
/// in the ingress filter in front of one shared model sub-program, so an
/// uncached sweep pays the full model compile once *per ingress* while
/// the compile cache pays it once per scenario — exactly the family
/// structure of the paper's Fig 7 experiments.
std::vector<SweepMember> buildSweepMembers(const gen::RegistryOptions &O) {
  std::vector<SweepMember> Members;
  for (const gen::ScenarioSpec &Spec : gen::buildRegistry(O)) {
    // One build to size the family; each member then rebuilds into its
    // own context (identically — the registry is deterministic).
    ast::Context Probe;
    std::size_t NumInputs = Spec.Build(Probe).Inputs.size();
    for (std::size_t I = 0; I < NumInputs; ++I)
      Members.push_back({Spec.Name + "/in" + std::to_string(I),
                         [Spec, I](ast::Context &Ctx) {
                           gen::Scenario S = Spec.Build(Ctx);
                           return ingressQuery(Ctx, S, I);
                         }});
  }
  return Members;
}

/// Compiles every member with the Direct solver; when \p Cache is given
/// every verifier shares it. Returns total compile seconds (model build
/// time excluded). \p Diagrams collects (pass 1) or verifies (pass 2) the
/// portable form of each member's diagram; a pass-2 mismatch is fatal for
/// the run (exit code 1 from main).
double runPass(const std::vector<SweepMember> &Members,
               fdd::CompileCache *Cache,
               std::vector<fdd::PortableFdd> &Diagrams, bool Verify,
               bool &AllEqual, bool Simplify = false,
               std::size_t *NodesBefore = nullptr,
               std::size_t *NodesAfter = nullptr) {
  double Total = 0;
  for (std::size_t I = 0; I < Members.size(); ++I) {
    ast::Context Ctx;
    const ast::Node *Program = Members[I].Build(Ctx);
    analysis::Verifier V(markov::SolverKind::Direct);
    if (Cache)
      V.setCompileCache(Cache);
    // The timer covers simplify + compile: the honest end-to-end cost of
    // the S15 pre-pass (the cache fingerprint then runs over the
    // simplified tree, so hits shift with it).
    WallTimer Timer;
    if (Simplify) {
      ast::SimplifyStats St;
      Program = ast::simplify(Ctx, Program, {}, &St);
      if (NodesBefore)
        *NodesBefore += St.NodesBefore;
      if (NodesAfter)
        *NodesAfter += St.NodesAfter;
    }
    fdd::FddRef Ref = V.compile(Program);
    Total += Timer.elapsed();
    if (!Verify) {
      Diagrams.push_back(fdd::exportFdd(V.manager(), Ref));
      continue;
    }
    if (fdd::importFdd(V.manager(), Diagrams[I]) != Ref) {
      AllEqual = false;
      std::fprintf(stderr,
                   "MISMATCH: %s compile of %s is not reference-equal "
                   "to the uncached sweep\n",
                   Simplify ? "simplified" : "cached",
                   Members[I].Name.c_str());
    }
  }
  return Total;
}

} // namespace

int main() {
  gen::RegistryOptions O;
  O.MaxChainK = envUnsigned("MCNK_SWEEP_CHAINK", 8);
  unsigned RingN = envUnsigned("MCNK_SWEEP_RINGN", 10);
  O.RingSizes.clear(); // Replace the registry defaults, don't extend them.
  for (unsigned N = 4; N <= RingN; N += 2)
    O.RingSizes.push_back(N);
  O.RandomGraphSize = envUnsigned("MCNK_SWEEP_RANDN", 8);
  O.NumRandomGraphs = envUnsigned("MCNK_SWEEP_RANDOM", 4);
  O.IncludeFatTree = envUnsigned("MCNK_SWEEP_FATTREE", 1) != 0;

  if (envUnsigned("MCNK_SWEEP_TABLE", 1)) {
    std::printf("=== Scenario-registry sweep (Direct solver) ===\n\n");
    std::printf("%-24s %8s %9s %9s %10s %10s %9s\n", "scenario", "inputs",
                "build s", "compile s", "fdd nodes", "transient",
                "delivery");

    for (const gen::ScenarioSpec &Spec : gen::buildRegistry(O)) {
      ast::Context Ctx;
      WallTimer BuildTimer;
      gen::Scenario S = Spec.Build(Ctx);
      double BuildTime = BuildTimer.elapsed();

      analysis::Verifier V(markov::SolverKind::Direct);
      WallTimer CompileTimer;
      fdd::FddRef Ref = V.compile(S.Program);
      double CompileTime = CompileTimer.elapsed();

      Rational Avg = V.averageDeliveryProbability(Ref, S.Inputs);
      const fdd::LoopSolveStats &LS = V.manager().lastLoopStats();
      std::printf("%-24s %8zu %9.3f %9.3f %10zu %10zu %9.5f\n",
                  S.Name.c_str(), S.Inputs.size(), BuildTime, CompileTime,
                  V.manager().diagramSize(Ref),
                  S.LoopBearing ? LS.NumTransient : 0, Avg.toDouble());
      std::fflush(stdout);
    }
  }

  // --- Blocked-solver sweep: Exact monolithic vs SCC/DAG blocks ---------
  bool BlockedEqual = true;
  if (envUnsigned("MCNK_SWEEP_BLOCKED", 1)) {
    std::printf("\n=== Blocked-solver sweep (Exact): monolithic vs "
                "SCC/DAG blocks (RCM) ===\n\n");
    std::printf("%-24s %8s %8s %11s %11s %9s %7s %7s\n", "scenario",
                "mono s", "blk s", "mono ops", "blk ops", "blk fill",
                "blocks", "maxblk");
    double MonoTotal = 0, BlkTotal = 0;
    std::size_t MonoOps = 0, BlkOps = 0, MonoFill = 0, BlkFill = 0;
    for (const gen::ScenarioSpec &Spec : gen::buildRegistry(O)) {
      ast::Context Ctx;
      gen::Scenario S = Spec.Build(Ctx);

      analysis::Verifier Mono; // Exact, monolithic solve.
      WallTimer MonoTimer;
      fdd::FddRef RM = Mono.compile(S.Program);
      double MonoSec = MonoTimer.elapsed();
      fdd::LoopSolveStats MS = Mono.manager().lastLoopStats();

      analysis::Verifier Blk; // Exact, block-structured solve.
      markov::SolverStructure SS;
      SS.Blocked = true;
      SS.Ordering = linalg::OrderingKind::ReverseCuthillMcKee;
      Blk.setSolverStructure(SS);
      WallTimer BlkTimer;
      fdd::FddRef RB = Blk.compile(S.Program);
      double BlkSec = BlkTimer.elapsed();
      const fdd::LoopSolveStats &BS = Blk.manager().lastLoopStats();

      if (fdd::importFdd(Mono.manager(), fdd::exportFdd(Blk.manager(), RB)) !=
          RM) {
        BlockedEqual = false;
        std::fprintf(stderr,
                     "MISMATCH: blocked compile of %s is not "
                     "reference-equal to the monolithic engine\n",
                     S.Name.c_str());
      }
      MonoTotal += MonoSec;
      BlkTotal += BlkSec;
      MonoOps += MS.EliminationOps;
      BlkOps += BS.EliminationOps;
      MonoFill += MS.FillIn;
      BlkFill += BS.FillIn;
      std::printf("%-24s %8.3f %8.3f %11zu %11zu %9zu %7zu %7zu\n",
                  S.Name.c_str(), MonoSec, BlkSec, MS.EliminationOps,
                  BS.EliminationOps, BS.FillIn, BS.NumBlocks,
                  BS.MaxBlockSize);
      std::fflush(stdout);
    }
    std::printf("totals: mono %.3f s / %zu ops / %zu fill, blocked %.3f s "
                "/ %zu ops / %zu fill; %s\n",
                MonoTotal, MonoOps, MonoFill, BlkTotal, BlkOps, BlkFill,
                BlockedEqual ? "all scenarios reference-equal"
                             : "MISMATCH (see stderr)");

    if (const char *Path = std::getenv("MCNK_SWEEP_BLOCKED_JSON");
        Path && *Path) {
      if (std::FILE *F = std::fopen(Path, "w")) {
        std::fprintf(F,
                     "{\n"
                     "  \"name\": \"scenario_sweep_blocked\",\n"
                     "  \"model\": \"scenario registry (ring max N%u), "
                     "Exact solver\",\n"
                     "  \"engine\": \"SCC/DAG block elimination, RCM "
                     "ordering (ARCHITECTURE S13)\",\n"
                     "  \"reference_equal\": %s,\n"
                     "  \"mono_seconds\": %.6f,\n"
                     "  \"blocked_seconds\": %.6f,\n"
                     "  \"mono_elim_ops\": %zu,\n"
                     "  \"blocked_elim_ops\": %zu,\n"
                     "  \"mono_fill_in\": %zu,\n"
                     "  \"blocked_fill_in\": %zu\n"
                     "}\n",
                     RingN, BlockedEqual ? "true" : "false", MonoTotal,
                     BlkTotal, MonoOps, BlkOps, MonoFill, BlkFill);
        std::fclose(F);
        std::printf("wrote %s\n", Path);
      } else {
        std::fprintf(stderr, "error: cannot write %s\n", Path);
        return 1;
      }
    }
  }

  // --- Modular-solver sweep: Rational Exact vs multi-prime modular ------
  bool ModularEqual = true;
  if (envUnsigned("MCNK_SWEEP_MODULAR", 1)) {
    std::printf("\n=== Modular-solver sweep: Rational Exact vs multi-prime "
                "ModularExact ===\n\n");
    std::printf("%-24s %8s %8s %7s %8s %7s %6s\n", "scenario", "exact s",
                "mod s", "primes", "retried", "bits", "fback");
    double ExactTotal = 0, ModTotal = 0;
    std::size_t Primes = 0, Retried = 0, Fallbacks = 0;
    for (const gen::ScenarioSpec &Spec : gen::buildRegistry(O)) {
      ast::Context Ctx;
      gen::Scenario S = Spec.Build(Ctx);

      analysis::Verifier Exact; // Rational Gaussian elimination.
      WallTimer ExactTimer;
      fdd::FddRef RE = Exact.compile(S.Program);
      double ExactSec = ExactTimer.elapsed();

      analysis::Verifier Mod(markov::SolverKind::ModularExact);
      WallTimer ModTimer;
      fdd::FddRef RM = Mod.compile(S.Program);
      double ModSec = ModTimer.elapsed();
      const fdd::LoopSolveStats &MS = Mod.manager().lastLoopStats();

      if (fdd::importFdd(Exact.manager(), fdd::exportFdd(Mod.manager(), RM)) !=
          RE) {
        ModularEqual = false;
        std::fprintf(stderr,
                     "MISMATCH: modular compile of %s is not "
                     "reference-equal to the Rational Exact engine\n",
                     S.Name.c_str());
      }
      ExactTotal += ExactSec;
      ModTotal += ModSec;
      Primes += MS.NumPrimes;
      Retried += MS.RetriedPrimes;
      Fallbacks += MS.ModularFallbacks;
      std::printf("%-24s %8.3f %8.3f %7zu %8zu %7zu %6zu\n", S.Name.c_str(),
                  ExactSec, ModSec, MS.NumPrimes, MS.RetriedPrimes,
                  MS.ReconstructionBits, MS.ModularFallbacks);
      std::fflush(stdout);
    }
    std::printf("totals: exact %.3f s, modular %.3f s, %zu primes / %zu "
                "retried / %zu fallbacks; %s\n",
                ExactTotal, ModTotal, Primes, Retried, Fallbacks,
                ModularEqual ? "all scenarios reference-equal"
                             : "MISMATCH (see stderr)");

    if (const char *Path = std::getenv("MCNK_SWEEP_MODULAR_JSON");
        Path && *Path) {
      if (std::FILE *F = std::fopen(Path, "w")) {
        std::fprintf(F,
                     "{\n"
                     "  \"name\": \"scenario_sweep_modular\",\n"
                     "  \"model\": \"scenario registry (ring max N%u)\",\n"
                     "  \"engine\": \"mod-p elimination + CRT / verified "
                     "rational reconstruction (ARCHITECTURE S14)\",\n"
                     "  \"reference_equal\": %s,\n"
                     "  \"exact_seconds\": %.6f,\n"
                     "  \"modular_seconds\": %.6f,\n"
                     "  \"num_primes\": %zu,\n"
                     "  \"retried_primes\": %zu,\n"
                     "  \"fallbacks\": %zu\n"
                     "}\n",
                     RingN, ModularEqual ? "true" : "false", ExactTotal,
                     ModTotal, Primes, Retried, Fallbacks);
        std::fclose(F);
        std::printf("wrote %s\n", Path);
      } else {
        std::fprintf(stderr, "error: cannot write %s\n", Path);
        return 1;
      }
    }
  }

  // --- Slice sweep: plain Exact vs delivery-sliced Exact (S17) ----------
  bool SliceEqual = true;
  if (envUnsigned("MCNK_SWEEP_SLICE", 1)) {
    std::printf("\n=== Slice sweep (Exact): plain vs delivery-observation "
                "slice ===\n\n");
    std::printf("%-24s %8s %8s %9s %9s %8s %7s\n", "scenario", "plain s",
                "slice s", "fdd", "fdd slc", "removed", "shrink");
    double PlainTotal = 0, SlicedTotal = 0;
    std::size_t FddPlain = 0, FddSliced = 0, Removed = 0;
    std::string BestName;
    double BestShrink = 0;
    for (const gen::ScenarioSpec &Spec : gen::buildRegistry(O)) {
      ast::Context Ctx;
      gen::Scenario S = Spec.Build(Ctx);

      analysis::Verifier Plain; // Exact, no slicing.
      WallTimer PlainTimer;
      fdd::FddRef RP = Plain.compile(S.Program);
      double PlainSec = PlainTimer.elapsed();
      std::size_t NP = Plain.manager().diagramSize(RP);
      Rational AvgP = Plain.averageDeliveryProbability(RP, S.Inputs);

      analysis::Verifier Sliced; // Exact, delivery cone of influence.
      Sliced.setSlice(&Ctx, ast::ObservationSet::delivery());
      WallTimer SlicedTimer;
      fdd::FddRef RS = Sliced.compile(S.Program);
      double SlicedSec = SlicedTimer.elapsed();
      std::size_t NS = Sliced.manager().diagramSize(RS);
      Rational AvgS = Sliced.averageDeliveryProbability(RS, S.Inputs);

      if (AvgP.toString() != AvgS.toString()) {
        SliceEqual = false;
        std::fprintf(stderr,
                     "MISMATCH: sliced compile of %s changes the average "
                     "delivery (%s vs %s)\n",
                     S.Name.c_str(), AvgS.toString().c_str(),
                     AvgP.toString().c_str());
      }
      double Shrink = NP ? 1.0 - static_cast<double>(NS) / NP : 0;
      if (Shrink > BestShrink) {
        BestShrink = Shrink;
        BestName = S.Name;
      }
      PlainTotal += PlainSec;
      SlicedTotal += SlicedSec;
      FddPlain += NP;
      FddSliced += NS;
      Removed += Sliced.lastSliceStats().AssignmentsRemoved;
      std::printf("%-24s %8.3f %8.3f %9zu %9zu %8zu %6.1f%%\n",
                  S.Name.c_str(), PlainSec, SlicedSec, NP, NS,
                  Sliced.lastSliceStats().AssignmentsRemoved,
                  100 * Shrink);
      std::fflush(stdout);
    }
    double Speedup = SlicedTotal > 0 ? PlainTotal / SlicedTotal : 0;
    std::printf("totals: plain %.3f s / %zu fdd nodes, sliced %.3f s / %zu "
                "fdd nodes (%.2fx wall, %zu assignments removed); best "
                "shrink %s %.1f%%; %s\n",
                PlainTotal, FddPlain, SlicedTotal, FddSliced, Speedup,
                Removed, BestName.c_str(), 100 * BestShrink,
                SliceEqual ? "all scenarios answer-equal"
                           : "MISMATCH (see stderr)");

    if (const char *Path = std::getenv("MCNK_SWEEP_SLICE_JSON");
        Path && *Path) {
      if (std::FILE *F = std::fopen(Path, "w")) {
        std::fprintf(
            F,
            "{\n"
            "  \"name\": \"scenario_sweep_slice\",\n"
            "  \"model\": \"scenario registry (ring max N%u), Exact "
            "solver\",\n"
            "  \"engine\": \"delivery cone-of-influence slice before "
            "fdd::compile (ARCHITECTURE S17)\",\n"
            "  \"answers_equal\": %s,\n"
            "  \"plain_seconds\": %.6f,\n"
            "  \"sliced_seconds\": %.6f,\n"
            "  \"speedup\": %.3f,\n"
            "  \"fdd_nodes_plain\": %zu,\n"
            "  \"fdd_nodes_sliced\": %zu,\n"
            "  \"assignments_removed\": %zu,\n"
            "  \"best_family\": \"%s\",\n"
            "  \"best_node_reduction\": %.3f\n"
            "}\n",
            RingN, SliceEqual ? "true" : "false", PlainTotal, SlicedTotal,
            Speedup, FddPlain, FddSliced, Removed, BestName.c_str(),
            BestShrink);
        std::fclose(F);
        std::printf("wrote %s\n", Path);
      } else {
        std::fprintf(stderr, "error: cannot write %s\n", Path);
        return 1;
      }
    }
  }

  if (!envUnsigned("MCNK_SWEEP_CACHE", 1))
    return BlockedEqual && ModularEqual && SliceEqual ? 0 : 1;

  // --- Cache sweep: cold engine vs shared compile cache -----------------
  std::vector<SweepMember> Members = buildSweepMembers(O);
  std::printf("\n=== Cache sweep: %zu per-ingress query members across "
              "the registry ===\n",
              Members.size());
  std::fflush(stdout);

  std::vector<fdd::PortableFdd> Diagrams;
  bool AllEqual = true;
  double UncachedSec =
      runPass(Members, nullptr, Diagrams, /*Verify=*/false, AllEqual);
  fdd::CompileCache Cache;
  double CachedSec =
      runPass(Members, &Cache, Diagrams, /*Verify=*/true, AllEqual);

  fdd::CompileCache::Stats CS = Cache.stats();
  double Speedup = CachedSec > 0 ? UncachedSec / CachedSec : 0;
  std::printf("uncached %.3f s, cached %.3f s, speedup %.2fx; "
              "%llu hits / %llu misses, %zu entries, %llu evictions\n",
              UncachedSec, CachedSec, Speedup,
              static_cast<unsigned long long>(CS.Hits),
              static_cast<unsigned long long>(CS.Misses), CS.Entries,
              static_cast<unsigned long long>(CS.Evictions));
  std::printf(AllEqual ? "cache sweep: all members reference-equal\n"
                       : "cache sweep: MISMATCH (see stderr)\n");

  if (const char *Path = std::getenv("MCNK_SWEEP_CACHE_JSON");
      Path && *Path) {
    if (std::FILE *F = std::fopen(Path, "w")) {
      std::fprintf(
          F,
          "{\n"
          "  \"name\": \"scenario_sweep_cache\",\n"
          "  \"model\": \"per-ingress query sweep across the registry "
          "(ring max N%u), Direct solver\",\n"
          "  \"engine\": \"CompileCache (structural fingerprints, LRU, "
          "portable FDDs)\",\n"
          "  \"members\": %zu,\n"
          "  \"reference_equal\": %s,\n"
          "  \"uncached_seconds\": %.6f,\n"
          "  \"cached_seconds\": %.6f,\n"
          "  \"speedup\": %.3f,\n"
          "  \"cache_hits\": %llu,\n"
          "  \"cache_misses\": %llu,\n"
          "  \"cache_entries\": %zu\n"
          "}\n",
          RingN, Members.size(), AllEqual ? "true" : "false", UncachedSec,
          CachedSec, Speedup, static_cast<unsigned long long>(CS.Hits),
          static_cast<unsigned long long>(CS.Misses), CS.Entries);
      std::fclose(F);
      std::printf("wrote %s\n", Path);
    } else {
      std::fprintf(stderr, "error: cannot write %s\n", Path);
      return 1;
    }
  }

  // --- Simplify sweep: cached compile with the S15 pre-pass on ----------
  // The cached pass above is the Simplify-off baseline; one more pass
  // over the same family with a fresh cache and the verified simplifier
  // in front measures (a) the end-to-end cost/benefit of the pre-pass and
  // (b) how the cache hit rate shifts when fingerprints run over
  // simplified trees (members of one family collapse onto fewer distinct
  // subtrees when the rewrite fires). Reference equality against the
  // uncached sweep is enforced member by member — the simplifier's
  // soundness contract, checked here on every bench run too.
  bool SimplifyEqual = true;
  if (envUnsigned("MCNK_SWEEP_SIMPLIFY", 1)) {
    fdd::CompileCache SCache;
    std::size_t NodesBefore = 0, NodesAfter = 0;
    double SimplifySec =
        runPass(Members, &SCache, Diagrams, /*Verify=*/true, SimplifyEqual,
                /*Simplify=*/true, &NodesBefore, &NodesAfter);
    fdd::CompileCache::Stats SS = SCache.stats();
    std::printf("\n=== Simplify sweep: cached compile, S15 pre-pass on ===\n");
    std::printf("off %.3f s (%llu hits / %llu misses), on %.3f s "
                "(%llu hits / %llu misses), nodes %zu -> %zu\n",
                CachedSec, static_cast<unsigned long long>(CS.Hits),
                static_cast<unsigned long long>(CS.Misses), SimplifySec,
                static_cast<unsigned long long>(SS.Hits),
                static_cast<unsigned long long>(SS.Misses), NodesBefore,
                NodesAfter);
    std::printf(SimplifyEqual
                    ? "simplify sweep: all members reference-equal\n"
                    : "simplify sweep: MISMATCH (see stderr)\n");

    if (const char *Path = std::getenv("MCNK_SWEEP_SIMPLIFY_JSON");
        Path && *Path) {
      if (std::FILE *F = std::fopen(Path, "w")) {
        std::fprintf(
            F,
            "{\n"
            "  \"name\": \"scenario_sweep_simplify\",\n"
            "  \"model\": \"per-ingress query sweep across the registry "
            "(ring max N%u), Direct solver, shared CompileCache\",\n"
            "  \"engine\": \"S15 verified simplifier before fdd::compile "
            "(CompileOptions.Simplify)\",\n"
            "  \"members\": %zu,\n"
            "  \"reference_equal\": %s,\n"
            "  \"off_seconds\": %.6f,\n"
            "  \"on_seconds\": %.6f,\n"
            "  \"off_cache_hits\": %llu,\n"
            "  \"off_cache_misses\": %llu,\n"
            "  \"on_cache_hits\": %llu,\n"
            "  \"on_cache_misses\": %llu,\n"
            "  \"nodes_before\": %zu,\n"
            "  \"nodes_after\": %zu\n"
            "}\n",
            RingN, Members.size(), SimplifyEqual ? "true" : "false",
            CachedSec, SimplifySec, static_cast<unsigned long long>(CS.Hits),
            static_cast<unsigned long long>(CS.Misses),
            static_cast<unsigned long long>(SS.Hits),
            static_cast<unsigned long long>(SS.Misses), NodesBefore,
            NodesAfter);
        std::fclose(F);
        std::printf("wrote %s\n", Path);
      } else {
        std::fprintf(stderr, "error: cannot write %s\n", Path);
        return 1;
      }
    }
  }
  return AllEqual && BlockedEqual && ModularEqual && SimplifyEqual &&
                 SliceEqual
             ? 0
             : 1;
}
