//===----------------------------------------------------------------------===//
///
/// \file
/// Scenario-registry sweep: compiles every scenario the registry
/// enumerates (the same registry that drives the conformance suite and
/// `mcnk fuzz`) with the Direct (sparse-LU) solver and reports compile
/// time, diagram size, loop-chain dimensions, and mean delivery — a
/// one-command overview of how every topology/routing/failure family
/// scales. Knobs:
///   MCNK_SWEEP_CHAINK   max chain diamonds        (default 8)
///   MCNK_SWEEP_RINGN    largest ring              (default 10)
///   MCNK_SWEEP_RANDN    random-graph size         (default 8)
///   MCNK_SWEEP_RANDOM   number of random graphs   (default 4)
///   MCNK_SWEEP_FATTREE  include p=4 FatTrees      (default 1)
///
//===----------------------------------------------------------------------===//

#include "BenchUtil.h"
#include "analysis/Verifier.h"
#include "gen/Scenario.h"
#include "support/Timer.h"

#include <cstdio>

using namespace mcnk;
using namespace mcnk::bench;

int main() {
  gen::RegistryOptions O;
  O.MaxChainK = envUnsigned("MCNK_SWEEP_CHAINK", 8);
  unsigned RingN = envUnsigned("MCNK_SWEEP_RINGN", 10);
  O.RingSizes.clear(); // Replace the registry defaults, don't extend them.
  for (unsigned N = 4; N <= RingN; N += 2)
    O.RingSizes.push_back(N);
  O.RandomGraphSize = envUnsigned("MCNK_SWEEP_RANDN", 8);
  O.NumRandomGraphs = envUnsigned("MCNK_SWEEP_RANDOM", 4);
  O.IncludeFatTree = envUnsigned("MCNK_SWEEP_FATTREE", 1) != 0;

  std::printf("=== Scenario-registry sweep (Direct solver) ===\n\n");
  std::printf("%-24s %8s %9s %9s %10s %10s %9s\n", "scenario", "inputs",
              "build s", "compile s", "fdd nodes", "transient",
              "delivery");

  for (const gen::ScenarioSpec &Spec : gen::buildRegistry(O)) {
    ast::Context Ctx;
    WallTimer BuildTimer;
    gen::Scenario S = Spec.Build(Ctx);
    double BuildTime = BuildTimer.elapsed();

    analysis::Verifier V(markov::SolverKind::Direct);
    WallTimer CompileTimer;
    fdd::FddRef Ref = V.compile(S.Program);
    double CompileTime = CompileTimer.elapsed();

    Rational Avg = V.averageDeliveryProbability(Ref, S.Inputs);
    const fdd::LoopSolveStats &LS = V.manager().lastLoopStats();
    std::printf("%-24s %8zu %9.3f %9.3f %10zu %10zu %9.5f\n",
                S.Name.c_str(), S.Inputs.size(), BuildTime, CompileTime,
                V.manager().diagramSize(Ref),
                S.LoopBearing ? LS.NumTransient : 0, Avg.toDouble());
    std::fflush(stdout);
  }
  return 0;
}
