//===----------------------------------------------------------------------===//
///
/// \file
/// Figure 7: scalability on FatTree data centers. For a sweep of FatTree
/// parameters p, measures the time to compile the ECMP network model to a
/// stochastic-matrix representation with (a) the native FDD backend and
/// (b) the PRISM pipeline (syntactic translation + prismlite explicit
/// model checking), each without failures (#f=0) and with independent
/// link failures at 1/1000.
///
/// Shape expected from the paper: both backends grow polynomially, the
/// native backend is consistently faster, and failures cost extra. A
/// per-point time budget retires series that exceed it (the paper's
/// timeout discipline). Knobs: MCNK_FIG7_MAXP (default 12),
/// MCNK_TIME_LIMIT seconds (default 30).
///
//===----------------------------------------------------------------------===//

#include "BenchUtil.h"
#include "analysis/Verifier.h"
#include "prism/Checker.h"
#include "prism/Translate.h"
#include "routing/Routing.h"

#include <cstdio>

using namespace mcnk;
using namespace mcnk::bench;
using namespace mcnk::routing;

namespace {

double compileNative(const topology::FatTreeLayout &L,
                     const FailureModel &F) {
  ast::Context Ctx;
  ModelOptions O;
  O.RoutingScheme = Scheme::F100;
  O.Failures = F;
  NetworkModel M = buildFatTreeModel(L, O, Ctx);
  analysis::Verifier V(markov::SolverKind::Direct);
  WallTimer T;
  fdd::FddRef Ref = V.compile(M.Program);
  (void)Ref;
  return T.elapsed();
}

double checkPrism(const topology::FatTreeLayout &L, const FailureModel &F) {
  ast::Context Ctx;
  ModelOptions O;
  O.RoutingScheme = Scheme::F100;
  O.Failures = F;
  NetworkModel M = buildFatTreeModel(L, O, Ctx);
  Packet In = M.ingressPacket(M.Ingresses.size() - 1, Ctx);
  WallTimer T;
  prism::Translation Tr = prism::translate(Ctx, M.Program, In);
  prism::Model PM;
  prism::GuardExpr Goal;
  std::string Error;
  if (!prism::parseModel(Tr.Source, PM, Error) ||
      !prism::parseGuard(Tr.DoneGuard, PM, Goal, Error)) {
    std::fprintf(stderr, "prism pipeline error: %s\n", Error.c_str());
    return T.elapsed();
  }
  prism::CheckResult CR;
  if (!prism::checkReachability(PM, Goal, markov::SolverKind::Iterative, CR,
                                Error))
    std::fprintf(stderr, "prismlite error: %s\n", Error.c_str());
  return T.elapsed();
}

/// MCNK_GOLDEN=1: deterministic table values instead of timings — the
/// compiled diagram size and exact mean delivery for the native backend,
/// and the reachable state space plus exact delivery probability for the
/// PRISM pipeline. Diffed against tests/golden/fig07.txt under ctest.
int runGolden(unsigned MaxP) {
  std::printf("=== Fig 7 golden: FatTree table values (ECMP to sw 1) "
              "===\n");
  std::printf("%4s %9s  %10s %12s  %10s %12s\n", "p", "switches",
              "fdd nodes", "delivery", "pri states", "pri prob");
  FailureModel Fail = FailureModel::iid(Rational(1, 1000));
  for (unsigned P = 4; P <= MaxP; P += 2) {
    topology::FatTreeLayout L;
    topology::makeFatTree(P, L);

    ast::Context Ctx;
    ModelOptions O;
    O.RoutingScheme = Scheme::F100;
    O.Failures = Fail;
    NetworkModel M = buildFatTreeModel(L, O, Ctx);
    analysis::Verifier V; // Exact engine for decided table values.
    fdd::FddRef Ref = V.compile(M.Program);
    std::vector<Packet> Inputs;
    for (std::size_t I = 0; I < M.Ingresses.size(); ++I)
      Inputs.push_back(M.ingressPacket(I, Ctx));
    Rational Delivery = V.averageDeliveryProbability(Ref, Inputs);

    prism::Translation Tr =
        prism::translate(Ctx, M.Program, Inputs.front());
    prism::Model PM;
    prism::GuardExpr Goal;
    std::string Error;
    std::size_t States = 0;
    std::string Prob = "-";
    if (prism::parseModel(Tr.Source, PM, Error) &&
        prism::parseGuard(Tr.DoneGuard, PM, Goal, Error)) {
      prism::CheckResult CR;
      if (prism::checkReachability(PM, Goal, markov::SolverKind::Exact, CR,
                                   Error)) {
        States = CR.NumStates;
        Prob = CR.Probability.toString();
      }
    }
    std::printf("%4u %9u  %10zu %12s  %10zu %12s\n", P, L.numSwitches(),
                V.manager().diagramSize(Ref), Delivery.toString().c_str(),
                States, Prob.c_str());
  }
  return 0;
}

} // namespace

int main() {
  unsigned MaxP = envUnsigned("MCNK_FIG7_MAXP", 12);
  if (envUnsigned("MCNK_GOLDEN", 0))
    return runGolden(std::min(MaxP, 6u));
  double Limit = envDouble("MCNK_TIME_LIMIT", 30.0);
  std::printf("=== Fig 7: FatTree scalability (ECMP to switch 1) ===\n");
  std::printf("series: native / native(#f=0) compile the full model; "
              "prism / prism(#f=0) answer one delivery query\n");
  std::printf("per-point budget: %.0fs (MCNK_TIME_LIMIT); '-' = retired\n\n",
              Limit);
  std::printf("%4s %9s  %10s  %10s  %10s  %10s\n", "p", "switches",
              "nat(#f=0)", "native", "pri(#f=0)", "prism");

  FailureModel NoFail = FailureModel::none();
  FailureModel Fail = FailureModel::iid(Rational(1, 1000));
  BudgetedSeries NativeNoFail(Limit), NativeFail(Limit), PrismNoFail(Limit),
      PrismFail(Limit);

  for (unsigned P = 4; P <= MaxP; P += 2) {
    topology::FatTreeLayout L;
    topology::makeFatTree(P, L);
    std::printf("%4u %9u", P, L.numSwitches());
    printCell(NativeNoFail.measure([&] { compileNative(L, NoFail); }));
    printCell(NativeFail.measure([&] { compileNative(L, Fail); }));
    printCell(PrismNoFail.measure([&] { checkPrism(L, NoFail); }));
    printCell(PrismFail.measure([&] { checkPrism(L, Fail); }));
    std::printf("\n");
    std::fflush(stdout);
  }
  return 0;
}
