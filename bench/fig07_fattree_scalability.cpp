//===----------------------------------------------------------------------===//
///
/// \file
/// Figure 7: scalability on FatTree data centers. For a sweep of FatTree
/// parameters p, measures the time to compile the ECMP network model to a
/// stochastic-matrix representation with (a) the native FDD backend and
/// (b) the PRISM pipeline (syntactic translation + prismlite explicit
/// model checking), each without failures (#f=0) and with independent
/// link failures at 1/1000.
///
/// Shape expected from the paper: both backends grow polynomially, the
/// native backend is consistently faster, and failures cost extra. A
/// per-point time budget retires series that exceed it (the paper's
/// timeout discipline). Knobs: MCNK_FIG7_MAXP (default 12),
/// MCNK_TIME_LIMIT seconds (default 30).
///
/// MCNK_FIG7_BLOCKED_JSON=<path> switches to the block-structured solver
/// trajectory point (docs/ARCHITECTURE.md S13): the same FatTree family
/// compiled with the Exact solver, monolithic vs SCC/DAG block
/// elimination with RCM ordering. Reference equality of the two diagrams
/// is enforced (nonzero exit on mismatch) and the JSON records wall time
/// plus the elimination-op / fill-in counters of each configuration.
///
/// MCNK_FIG7_MODULAR_JSON=<path> switches to the multi-prime modular
/// solver trajectory point (docs/ARCHITECTURE.md S14): the FatTree family
/// plus a diamond-chain family (the Fig 10 topology, where the exact
/// rationals grow to thousands of bits and Rational elimination goes
/// superlinear) compiled with the Rational Exact engine vs ModularExact.
/// Reference equality is enforced at every point (nonzero exit on
/// mismatch) and the JSON records wall times, speedups, and the per-solve
/// prime/reconstruction counters. MCNK_FIG7_MODULAR_MAXK caps the chain
/// sweep (default 64 diamonds).
///
//===----------------------------------------------------------------------===//

#include "BenchUtil.h"
#include "analysis/Verifier.h"
#include "fdd/Export.h"
#include "prism/Checker.h"
#include "prism/Translate.h"
#include "routing/Routing.h"

#include <cstdio>
#include <string>

using namespace mcnk;
using namespace mcnk::bench;
using namespace mcnk::routing;

namespace {

double compileNative(const topology::FatTreeLayout &L,
                     const FailureModel &F) {
  ast::Context Ctx;
  ModelOptions O;
  O.RoutingScheme = Scheme::F100;
  O.Failures = F;
  NetworkModel M = buildFatTreeModel(L, O, Ctx);
  analysis::Verifier V(markov::SolverKind::Direct);
  WallTimer T;
  fdd::FddRef Ref = V.compile(M.Program);
  (void)Ref;
  return T.elapsed();
}

double checkPrism(const topology::FatTreeLayout &L, const FailureModel &F) {
  ast::Context Ctx;
  ModelOptions O;
  O.RoutingScheme = Scheme::F100;
  O.Failures = F;
  NetworkModel M = buildFatTreeModel(L, O, Ctx);
  Packet In = M.ingressPacket(M.Ingresses.size() - 1, Ctx);
  WallTimer T;
  prism::Translation Tr = prism::translate(Ctx, M.Program, In);
  prism::Model PM;
  prism::GuardExpr Goal;
  std::string Error;
  if (!prism::parseModel(Tr.Source, PM, Error) ||
      !prism::parseGuard(Tr.DoneGuard, PM, Goal, Error)) {
    std::fprintf(stderr, "prism pipeline error: %s\n", Error.c_str());
    return T.elapsed();
  }
  prism::CheckResult CR;
  if (!prism::checkReachability(PM, Goal, markov::SolverKind::Iterative, CR,
                                Error))
    std::fprintf(stderr, "prismlite error: %s\n", Error.c_str());
  return T.elapsed();
}

/// MCNK_GOLDEN=1: deterministic table values instead of timings — the
/// compiled diagram size and exact mean delivery for the native backend,
/// and the reachable state space plus exact delivery probability for the
/// PRISM pipeline. Diffed against tests/golden/fig07.txt under ctest.
int runGolden(unsigned MaxP) {
  std::printf("=== Fig 7 golden: FatTree table values (ECMP to sw 1) "
              "===\n");
  std::printf("%4s %9s  %10s %12s  %10s %12s\n", "p", "switches",
              "fdd nodes", "delivery", "pri states", "pri prob");
  FailureModel Fail = FailureModel::iid(Rational(1, 1000));
  for (unsigned P = 4; P <= MaxP; P += 2) {
    topology::FatTreeLayout L;
    topology::makeFatTree(P, L);

    ast::Context Ctx;
    ModelOptions O;
    O.RoutingScheme = Scheme::F100;
    O.Failures = Fail;
    NetworkModel M = buildFatTreeModel(L, O, Ctx);
    analysis::Verifier V; // Exact engine for decided table values.
    fdd::FddRef Ref = V.compile(M.Program);
    std::vector<Packet> Inputs;
    for (std::size_t I = 0; I < M.Ingresses.size(); ++I)
      Inputs.push_back(M.ingressPacket(I, Ctx));
    Rational Delivery = V.averageDeliveryProbability(Ref, Inputs);

    prism::Translation Tr =
        prism::translate(Ctx, M.Program, Inputs.front());
    prism::Model PM;
    prism::GuardExpr Goal;
    std::string Error;
    std::size_t States = 0;
    std::string Prob = "-";
    if (prism::parseModel(Tr.Source, PM, Error) &&
        prism::parseGuard(Tr.DoneGuard, PM, Goal, Error)) {
      prism::CheckResult CR;
      if (prism::checkReachability(PM, Goal, markov::SolverKind::Exact, CR,
                                   Error)) {
        States = CR.NumStates;
        Prob = CR.Probability.toString();
      }
    }
    std::printf("%4u %9u  %10zu %12s  %10zu %12s\n", P, L.numSwitches(),
                V.manager().diagramSize(Ref), Delivery.toString().c_str(),
                States, Prob.c_str());
  }
  return 0;
}

/// MCNK_FIG7_BLOCKED_JSON: the S13 blocked-solver trajectory point. Both
/// engines are Exact, so the compiled diagrams must be reference-equal;
/// the interesting deltas are the counters — on the (acyclic) FatTree
/// forwarding chains the condensation is all singleton classes, so the
/// blocked elimination does strictly less multiply-subtract work and
/// creates no fill-in.
int runBlocked(unsigned MaxP, const char *Path) {
  std::printf("=== Fig 7 blocked-solver point: Exact monolithic vs "
              "SCC/DAG blocks (RCM) ===\n");
  std::printf("%4s %9s  %8s %8s  %11s %11s  %9s %9s  %7s %7s\n", "p",
              "switches", "mono s", "blk s", "mono ops", "blk ops",
              "mono fill", "blk fill", "blocks", "maxblk");
  FailureModel Fail = FailureModel::iid(Rational(1, 1000));
  std::string Points;
  bool AllEqual = true;
  for (unsigned P = 4; P <= MaxP; P += 2) {
    topology::FatTreeLayout L;
    topology::makeFatTree(P, L);
    ast::Context Ctx;
    ModelOptions O;
    O.RoutingScheme = Scheme::F100;
    O.Failures = Fail;
    NetworkModel M = buildFatTreeModel(L, O, Ctx);

    analysis::Verifier Mono; // Exact, monolithic solve.
    WallTimer MonoTimer;
    fdd::FddRef RM = Mono.compile(M.Program);
    double MonoSec = MonoTimer.elapsed();
    fdd::LoopSolveStats MS = Mono.manager().lastLoopStats();

    analysis::Verifier Blk; // Exact, block-structured solve.
    markov::SolverStructure S;
    S.Blocked = true;
    S.Ordering = linalg::OrderingKind::ReverseCuthillMcKee;
    Blk.setSolverStructure(S);
    WallTimer BlkTimer;
    fdd::FddRef RB = Blk.compile(M.Program);
    double BlkSec = BlkTimer.elapsed();
    const fdd::LoopSolveStats &BS = Blk.manager().lastLoopStats();

    bool Equal =
        fdd::importFdd(Mono.manager(), fdd::exportFdd(Blk.manager(), RB)) ==
        RM;
    AllEqual = AllEqual && Equal;
    if (!Equal)
      std::fprintf(stderr,
                   "MISMATCH: blocked compile differs from monolithic at "
                   "p=%u\n",
                   P);

    std::printf("%4u %9u  %8.3f %8.3f  %11zu %11zu  %9zu %9zu  %7zu "
                "%7zu\n",
                P, L.numSwitches(), MonoSec, BlkSec, MS.EliminationOps,
                BS.EliminationOps, MS.FillIn, BS.FillIn, BS.NumBlocks,
                BS.MaxBlockSize);
    std::fflush(stdout);

    char Point[512];
    std::snprintf(Point, sizeof(Point),
                  "%s    {\"p\": %u, \"switches\": %u, "
                  "\"solved_states\": %zu, "
                  "\"mono_seconds\": %.6f, \"blocked_seconds\": %.6f, "
                  "\"mono_elim_ops\": %zu, \"blocked_elim_ops\": %zu, "
                  "\"mono_fill_in\": %zu, \"blocked_fill_in\": %zu, "
                  "\"num_blocks\": %zu, \"max_block\": %zu}",
                  Points.empty() ? "" : ",\n", P, L.numSwitches(),
                  BS.NumSolved, MonoSec, BlkSec, MS.EliminationOps,
                  BS.EliminationOps, MS.FillIn, BS.FillIn, BS.NumBlocks,
                  BS.MaxBlockSize);
    Points += Point;
  }
  std::printf(AllEqual
                  ? "blocked solver: all points reference-equal\n"
                  : "blocked solver: MISMATCH (see stderr)\n");

  if (std::FILE *F = std::fopen(Path, "w")) {
    std::fprintf(F,
                 "{\n"
                 "  \"name\": \"solver_blocked\",\n"
                 "  \"model\": \"FatTree ECMP with iid 1/1000 link "
                 "failures (Fig 7 family), Exact solver\",\n"
                 "  \"engine\": \"SCC/DAG block elimination, RCM ordering "
                 "(ARCHITECTURE S13)\",\n"
                 "  \"reference_equal\": %s,\n"
                 "  \"points\": [\n%s\n  ]\n"
                 "}\n",
                 AllEqual ? "true" : "false", Points.c_str());
    std::fclose(F);
    std::printf("wrote %s\n", Path);
  } else {
    std::fprintf(stderr, "error: cannot write %s\n", Path);
    return 1;
  }
  return AllEqual ? 0 : 1;
}

/// One MCNK_FIG7_MODULAR_JSON point: compiles \p Program with the
/// Rational Exact engine and with ModularExact, enforces reference
/// equality, prints one table row, and appends one JSON point. Returns
/// false on mismatch.
bool modularPoint(ast::Context &Ctx, const ast::Node *Program,
                  const char *Family, unsigned Param, unsigned Switches,
                  std::string &Points, bool &AllEqual) {
  (void)Ctx;
  analysis::Verifier Exact; // Rational Gaussian elimination.
  WallTimer ExactTimer;
  fdd::FddRef RE = Exact.compile(Program);
  double ExactSec = ExactTimer.elapsed();

  analysis::Verifier Mod(markov::SolverKind::ModularExact);
  WallTimer ModTimer;
  fdd::FddRef RM = Mod.compile(Program);
  double ModSec = ModTimer.elapsed();
  const fdd::LoopSolveStats &MS = Mod.manager().lastLoopStats();

  bool Equal =
      fdd::importFdd(Exact.manager(), fdd::exportFdd(Mod.manager(), RM)) ==
      RE;
  AllEqual = AllEqual && Equal;
  if (!Equal)
    std::fprintf(stderr,
                 "MISMATCH: modular compile differs from Rational exact "
                 "(%s %u)\n",
                 Family, Param);

  double Speedup = ModSec > 0.0 ? ExactSec / ModSec : 0.0;
  std::printf("%-8s %5u %9u  %9.3f %9.3f  %7.2fx  %6zu %7zu %6zu %5zu\n",
              Family, Param, Switches, ExactSec, ModSec, Speedup,
              MS.NumPrimes, MS.RetriedPrimes, MS.ReconstructionBits,
              MS.ModularFallbacks);
  std::fflush(stdout);

  char Point[512];
  std::snprintf(Point, sizeof(Point),
                "%s    {\"family\": \"%s\", \"param\": %u, "
                "\"switches\": %u, \"solved_states\": %zu, "
                "\"exact_seconds\": %.6f, \"modular_seconds\": %.6f, "
                "\"speedup\": %.3f, \"num_primes\": %zu, "
                "\"retried_primes\": %zu, \"reconstruction_bits\": %zu, "
                "\"fallbacks\": %zu}",
                Points.empty() ? "" : ",\n", Family, Param, Switches,
                MS.NumSolved, ExactSec, ModSec, Speedup, MS.NumPrimes,
                MS.RetriedPrimes, MS.ReconstructionBits,
                MS.ModularFallbacks);
  Points += Point;
  return Equal;
}

/// MCNK_FIG7_MODULAR_JSON: the S14 modular-solver trajectory point.
/// Rational Exact vs ModularExact on the FatTree family and on the Fig 10
/// diamond-chain family. The chains are where the modular engine earns
/// its keep: the absorption probabilities have denominators near 2000^K,
/// so Rational elimination drags ever-wider bignums through every
/// multiply-subtract while the modular kernels stay word-size and only
/// pay bignum cost in the final CRT + reconstruction.
int runModular(unsigned MaxP, unsigned MaxK, const char *Path) {
  std::printf("=== Fig 7/10 modular-solver point: Rational Exact vs "
              "multi-prime ModularExact ===\n");
  std::printf("%-8s %5s %9s  %9s %9s  %8s  %6s %7s %6s %5s\n", "family",
              "param", "switches", "exact s", "mod s", "speedup", "primes",
              "retried", "bits", "fback");
  FailureModel Fail = FailureModel::iid(Rational(1, 1000));
  std::string Points;
  bool AllEqual = true;

  for (unsigned P = 4; P <= MaxP; P += 2) {
    topology::FatTreeLayout L;
    topology::makeFatTree(P, L);
    ast::Context Ctx;
    ModelOptions O;
    O.RoutingScheme = Scheme::F100;
    O.Failures = Fail;
    NetworkModel M = buildFatTreeModel(L, O, Ctx);
    modularPoint(Ctx, M.Program, "fattree", P, L.numSwitches(), Points,
                 AllEqual);
  }

  for (unsigned K = 2; K <= MaxK; K *= 2) {
    topology::ChainLayout L;
    topology::makeChain(K, L);
    ast::Context Ctx;
    NetworkModel M =
        routing::buildChainModel(L, Rational(1, 1000), Ctx);
    modularPoint(Ctx, M.Program, "chain", K, L.numSwitches(), Points,
                 AllEqual);
  }

  std::printf(AllEqual
                  ? "modular solver: all points reference-equal\n"
                  : "modular solver: MISMATCH (see stderr)\n");

  if (std::FILE *F = std::fopen(Path, "w")) {
    std::fprintf(F,
                 "{\n"
                 "  \"name\": \"solver_modular\",\n"
                 "  \"model\": \"FatTree ECMP (Fig 7 family) and diamond "
                 "chains (Fig 10 family), iid 1/1000 link failures\",\n"
                 "  \"engine\": \"mod-p elimination + CRT / verified "
                 "rational reconstruction (ARCHITECTURE S14)\",\n"
                 "  \"reference_equal\": %s,\n"
                 "  \"points\": [\n%s\n  ]\n"
                 "}\n",
                 AllEqual ? "true" : "false", Points.c_str());
    std::fclose(F);
    std::printf("wrote %s\n", Path);
  } else {
    std::fprintf(stderr, "error: cannot write %s\n", Path);
    return 1;
  }
  return AllEqual ? 0 : 1;
}

} // namespace

int main() {
  unsigned MaxP = envUnsigned("MCNK_FIG7_MAXP", 12);
  if (const char *Path = std::getenv("MCNK_FIG7_MODULAR_JSON");
      Path && *Path)
    return runModular(std::min(MaxP, 6u),
                      envUnsigned("MCNK_FIG7_MODULAR_MAXK", 512), Path);
  if (const char *Path = std::getenv("MCNK_FIG7_BLOCKED_JSON");
      Path && *Path)
    return runBlocked(std::min(MaxP, 6u), Path);
  if (envUnsigned("MCNK_GOLDEN", 0))
    return runGolden(std::min(MaxP, 6u));
  double Limit = envDouble("MCNK_TIME_LIMIT", 30.0);
  std::printf("=== Fig 7: FatTree scalability (ECMP to switch 1) ===\n");
  std::printf("series: native / native(#f=0) compile the full model; "
              "prism / prism(#f=0) answer one delivery query\n");
  std::printf("per-point budget: %.0fs (MCNK_TIME_LIMIT); '-' = retired\n\n",
              Limit);
  std::printf("%4s %9s  %10s  %10s  %10s  %10s\n", "p", "switches",
              "nat(#f=0)", "native", "pri(#f=0)", "prism");

  FailureModel NoFail = FailureModel::none();
  FailureModel Fail = FailureModel::iid(Rational(1, 1000));
  BudgetedSeries NativeNoFail(Limit), NativeFail(Limit), PrismNoFail(Limit),
      PrismFail(Limit);

  for (unsigned P = 4; P <= MaxP; P += 2) {
    topology::FatTreeLayout L;
    topology::makeFatTree(P, L);
    std::printf("%4u %9u", P, L.numSwitches());
    printCell(NativeNoFail.measure([&] { compileNative(L, NoFail); }));
    printCell(NativeFail.measure([&] { compileNative(L, Fail); }));
    printCell(PrismNoFail.measure([&] { checkPrism(L, NoFail); }));
    printCell(PrismFail.measure([&] { checkPrism(L, Fail); }));
    std::printf("\n");
    std::fflush(stdout);
  }
  return 0;
}
