//===----------------------------------------------------------------------===//
///
/// \file
/// Figure 7: scalability on FatTree data centers. For a sweep of FatTree
/// parameters p, measures the time to compile the ECMP network model to a
/// stochastic-matrix representation with (a) the native FDD backend and
/// (b) the PRISM pipeline (syntactic translation + prismlite explicit
/// model checking), each without failures (#f=0) and with independent
/// link failures at 1/1000.
///
/// Shape expected from the paper: both backends grow polynomially, the
/// native backend is consistently faster, and failures cost extra. A
/// per-point time budget retires series that exceed it (the paper's
/// timeout discipline). Knobs: MCNK_FIG7_MAXP (default 12),
/// MCNK_TIME_LIMIT seconds (default 30).
///
//===----------------------------------------------------------------------===//

#include "BenchUtil.h"
#include "analysis/Verifier.h"
#include "prism/Checker.h"
#include "prism/Translate.h"
#include "routing/Routing.h"

#include <cstdio>

using namespace mcnk;
using namespace mcnk::bench;
using namespace mcnk::routing;

namespace {

double compileNative(const topology::FatTreeLayout &L,
                     const FailureModel &F) {
  ast::Context Ctx;
  ModelOptions O;
  O.RoutingScheme = Scheme::F100;
  O.Failures = F;
  NetworkModel M = buildFatTreeModel(L, O, Ctx);
  analysis::Verifier V(markov::SolverKind::Direct);
  WallTimer T;
  fdd::FddRef Ref = V.compile(M.Program);
  (void)Ref;
  return T.elapsed();
}

double checkPrism(const topology::FatTreeLayout &L, const FailureModel &F) {
  ast::Context Ctx;
  ModelOptions O;
  O.RoutingScheme = Scheme::F100;
  O.Failures = F;
  NetworkModel M = buildFatTreeModel(L, O, Ctx);
  Packet In = M.ingressPacket(M.Ingresses.size() - 1, Ctx);
  WallTimer T;
  prism::Translation Tr = prism::translate(Ctx, M.Program, In);
  prism::Model PM;
  prism::GuardExpr Goal;
  std::string Error;
  if (!prism::parseModel(Tr.Source, PM, Error) ||
      !prism::parseGuard(Tr.DoneGuard, PM, Goal, Error)) {
    std::fprintf(stderr, "prism pipeline error: %s\n", Error.c_str());
    return T.elapsed();
  }
  prism::CheckResult CR;
  if (!prism::checkReachability(PM, Goal, markov::SolverKind::Iterative, CR,
                                Error))
    std::fprintf(stderr, "prismlite error: %s\n", Error.c_str());
  return T.elapsed();
}

} // namespace

int main() {
  unsigned MaxP = envUnsigned("MCNK_FIG7_MAXP", 12);
  double Limit = envDouble("MCNK_TIME_LIMIT", 30.0);
  std::printf("=== Fig 7: FatTree scalability (ECMP to switch 1) ===\n");
  std::printf("series: native / native(#f=0) compile the full model; "
              "prism / prism(#f=0) answer one delivery query\n");
  std::printf("per-point budget: %.0fs (MCNK_TIME_LIMIT); '-' = retired\n\n",
              Limit);
  std::printf("%4s %9s  %10s  %10s  %10s  %10s\n", "p", "switches",
              "nat(#f=0)", "native", "pri(#f=0)", "prism");

  FailureModel NoFail = FailureModel::none();
  FailureModel Fail = FailureModel::iid(Rational(1, 1000));
  BudgetedSeries NativeNoFail(Limit), NativeFail(Limit), PrismNoFail(Limit),
      PrismFail(Limit);

  for (unsigned P = 4; P <= MaxP; P += 2) {
    topology::FatTreeLayout L;
    topology::makeFatTree(P, L);
    std::printf("%4u %9u", P, L.numSwitches());
    printCell(NativeNoFail.measure([&] { compileNative(L, NoFail); }));
    printCell(NativeFail.measure([&] { compileNative(L, Fail); }));
    printCell(PrismNoFail.measure([&] { checkPrism(L, NoFail); }));
    printCell(PrismFail.measure([&] { checkPrism(L, Fail); }));
    std::printf("\n");
    std::fflush(stdout);
  }
  return 0;
}
